//! Per-relation symbol indexes: `(position, symbol) → fact ids` as dense
//! sorted runs.
//!
//! The plan-based witness enumeration of `ucqa-query` replaces the naive
//! "scan the whole relation per atom" join with indexed lookups: an atom
//! whose term at some position is already bound (a constant, or a variable
//! bound by an earlier join step) only has to look at the facts carrying
//! that symbol at that position.  [`RelationIndex`] materialises those
//! posting lists **once per database** in CSR form — per (relation,
//! position) one flat `Vec<FactId>` of ascending runs plus an offset array
//! indexed directly by [`Sym`] — so a probe is two array reads and a
//! slice, with no `HashMap<Value, _>` on the path.  The index is immutable
//! afterwards and shared across threads exactly like
//! [`crate::ConflictIndex`].
//!
//! [`crate::Database::relation_index`] builds the index lazily on first
//! use and caches it behind an `Arc`; once built, the cache is
//! *maintained*: database mutations patch it with fact-level deltas
//! (the crate-private `RelationIndex::apply_insert` /
//! `RelationIndex::apply_delete`)
//! instead of invalidating it, and a delta-maintained index is
//! structurally equal to a fresh [`RelationIndex::build`] (the rebuild is
//! the property-tested oracle).  Posting runs preserve insertion order of
//! the underlying fact ids (ascending), so enumeration orders are
//! deterministic — the counting-sort fill visits facts in id order, which
//! also makes the runs valid inputs for [`intersect_postings`].

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::{Database, FactId, RelationId, Sym, Value};

/// The posting lists of one `(relation, position)` pair in CSR form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PostingColumn {
    /// `offsets[sym.index()] .. offsets[sym.index() + 1]` delimits the run
    /// of `facts` carrying `sym`; length `sym_bound + 1`.
    offsets: Vec<u32>,
    /// All fact ids of the relation, grouped by symbol, ascending within
    /// each group.
    facts: Vec<FactId>,
    /// Number of distinct symbols with a non-empty run.
    distinct: u32,
}

impl PostingColumn {
    #[inline]
    fn run(&self, sym: Sym) -> &[FactId] {
        let i = sym.index();
        if i + 1 >= self.offsets.len() {
            // A symbol interned after this index was built (or by a
            // sibling database) matches no indexed fact.
            return &[];
        }
        &self.facts[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Immutable per-relation CSR indexes from `(position, symbol)` to the
/// ids of the facts carrying that symbol at that position.
///
/// Built once per [`Database`] (see [`Database::relation_index`]) and
/// shared across threads; all lookups return borrowed slices, so the
/// query-evaluation hot path performs no allocation.  The cardinality
/// accessors ([`RelationIndex::posting_len`],
/// [`RelationIndex::distinct_count`],
/// [`RelationIndex::relation_cardinality`]) expose the exact statistics
/// the join planner uses for selectivity-based ordering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationIndex {
    /// `columns[relation][position]`: symbol → ascending fact-id run.
    columns: Vec<Vec<PostingColumn>>,
    /// Facts per relation (for planner cardinality estimates).
    cardinalities: Vec<u32>,
}

impl RelationIndex {
    /// Builds the index of `db`: one counting-sort pass per column.
    pub fn build(db: &Database) -> Self {
        let schema = db.schema();
        let sym_bound = db.dictionary().len();
        let mut columns: Vec<Vec<PostingColumn>> = Vec::with_capacity(schema.relation_count());
        let mut cardinalities = Vec::with_capacity(schema.relation_count());
        for relation in schema.relation_ids() {
            let ids = db.facts_of(relation);
            cardinalities.push(ids.len() as u32);
            let mut relation_columns = Vec::with_capacity(schema.arity(relation));
            for column in db.columns_of(relation) {
                // Count, prefix-sum, fill — visiting rows in ascending
                // fact-id order keeps every run ascending.
                let mut offsets = vec![0u32; sym_bound + 1];
                for &sym in column {
                    offsets[sym.index() + 1] += 1;
                }
                let distinct = offsets.iter().filter(|&&n| n > 0).count() as u32;
                for i in 0..sym_bound {
                    offsets[i + 1] += offsets[i];
                }
                let mut facts = vec![FactId::new(0); column.len()];
                let mut cursor = offsets.clone();
                for (row, &sym) in column.iter().enumerate() {
                    facts[cursor[sym.index()] as usize] = ids[row];
                    cursor[sym.index()] += 1;
                }
                relation_columns.push(PostingColumn {
                    offsets,
                    facts,
                    distinct,
                });
            }
            columns.push(relation_columns);
        }
        RelationIndex {
            columns,
            cardinalities,
        }
    }

    /// Iterates the non-empty posting runs of `(relation, position)` in
    /// symbol order.  Each run is the ascending id list of the facts
    /// sharing one symbol at that position — i.e. the runs partition the
    /// relation into its groups of equal `position`-values, which is what
    /// the FD violation scan consumes for single-attribute left-hand
    /// sides.
    ///
    /// # Panics
    /// Panics if `relation` or `position` is out of range for the indexed
    /// database.
    pub fn posting_runs(
        &self,
        relation: RelationId,
        position: usize,
    ) -> impl Iterator<Item = &[FactId]> + '_ {
        let column = &self.columns[relation.index()][position];
        column
            .offsets
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(move |w| &column.facts[w[0] as usize..w[1] as usize])
    }

    /// The ids of the facts of `relation` whose symbol at `position` equals
    /// `sym`, in ascending id order (empty if no fact matches, including
    /// for symbols interned after this index was built).
    ///
    /// # Panics
    /// Panics if `relation` or `position` is out of range for the indexed
    /// database.
    #[inline]
    pub fn matches(&self, relation: RelationId, position: usize, sym: Sym) -> &[FactId] {
        self.columns[relation.index()][position].run(sym)
    }

    /// Value-level probe: resolves `value` through `dict` and returns its
    /// posting run (empty when the value was never interned — it then
    /// occurs in no fact).
    pub fn matches_value(
        &self,
        dict: &crate::Dictionary,
        relation: RelationId,
        position: usize,
        value: &Value,
    ) -> &[FactId] {
        match dict.lookup(value) {
            Some(sym) => self.matches(relation, position, sym),
            None => &[],
        }
    }

    /// The exact length of the posting run of `sym` at
    /// `(relation, position)` — the statistic the join planner uses to
    /// break atom-order ties.
    #[inline]
    pub fn posting_len(&self, relation: RelationId, position: usize, sym: Sym) -> usize {
        self.matches(relation, position, sym).len()
    }

    /// Alias of [`RelationIndex::posting_len`] kept for the run-time
    /// access-path choice in `ucqa-query`.
    pub fn selectivity(&self, relation: RelationId, position: usize, sym: Sym) -> usize {
        self.posting_len(relation, position, sym)
    }

    /// Number of distinct symbols with at least one fact at
    /// `(relation, position)`.
    #[inline]
    pub fn distinct_count(&self, relation: RelationId, position: usize) -> usize {
        self.columns[relation.index()][position].distinct as usize
    }

    /// Alias of [`RelationIndex::distinct_count`] (pre-encoding name).
    pub fn distinct_values(&self, relation: RelationId, position: usize) -> usize {
        self.distinct_count(relation, position)
    }

    /// Number of facts of `relation`.
    #[inline]
    pub fn relation_cardinality(&self, relation: RelationId) -> usize {
        self.cardinalities[relation.index()] as usize
    }

    /// Total number of posting entries across all relations and positions
    /// (= Σ relation arity × fact count; a size diagnostic).
    pub fn posting_entries(&self) -> usize {
        self.columns
            .iter()
            .flatten()
            .map(|column| column.facts.len())
            .sum()
    }

    /// Extends every column's offset array to cover symbols `< bound`,
    /// repeating the final offset (new symbols have empty runs).
    ///
    /// [`RelationIndex::build`] sizes every offset array to the *global*
    /// dictionary bound, so a delta-maintained index must grow its arrays
    /// the same way whenever a mutation interned new constants — otherwise
    /// it could never be structurally equal to a fresh rebuild.
    pub(crate) fn ensure_sym_bound(&mut self, bound: usize) {
        for column in self.columns.iter_mut().flatten() {
            let tail = column.offsets.last().copied().unwrap_or(0);
            if column.offsets.is_empty() {
                column.offsets.push(0);
            }
            while column.offsets.len() < bound + 1 {
                column.offsets.push(tail);
            }
        }
    }

    /// Applies the insertion of fact `id` with symbols `row` into
    /// `relation`: appends `id` to the posting run of each
    /// `(position, symbol)` pair and bumps the relation cardinality.
    ///
    /// `id` must be a *newly assigned* fact id — greater than every id
    /// already indexed — so appending at the end of each run preserves the
    /// ascending-run invariant.  Callers must have called
    /// [`RelationIndex::ensure_sym_bound`] first if the insertion interned
    /// new constants.
    pub(crate) fn apply_insert(&mut self, relation: RelationId, row: &[Sym], id: FactId) {
        self.cardinalities[relation.index()] += 1;
        for (position, &sym) in row.iter().enumerate() {
            let column = &mut self.columns[relation.index()][position];
            let s = sym.index();
            debug_assert!(
                s + 1 < column.offsets.len(),
                "apply_insert without ensure_sym_bound: {sym} out of range"
            );
            let end = column.offsets[s + 1] as usize;
            if column.offsets[s] as usize == end {
                column.distinct += 1;
            }
            debug_assert!(
                end == 0 || column.facts[end - 1] < id,
                "inserted fact id must exceed every indexed id of its run"
            );
            column.facts.insert(end, id);
            for offset in &mut column.offsets[s + 1..] {
                *offset += 1;
            }
        }
    }

    /// Applies the deletion of fact `id` (which carried symbols `row` in
    /// `relation`): removes `id` from the posting run of each
    /// `(position, symbol)` pair and decrements the relation cardinality.
    ///
    /// # Panics
    /// Panics if `id` is not indexed under every `(position, symbol)` of
    /// `row` — the row must be exactly the one the fact was inserted with.
    pub(crate) fn apply_delete(&mut self, relation: RelationId, row: &[Sym], id: FactId) {
        self.cardinalities[relation.index()] -= 1;
        for (position, &sym) in row.iter().enumerate() {
            let column = &mut self.columns[relation.index()][position];
            let s = sym.index();
            let lo = column.offsets[s] as usize;
            let hi = column.offsets[s + 1] as usize;
            let at = match column.facts[lo..hi].binary_search(&id) {
                Ok(at) => lo + at,
                Err(_) => panic!("apply_delete: {id} is not indexed under {sym}"),
            };
            column.facts.remove(at);
            for offset in &mut column.offsets[s + 1..] {
                *offset -= 1;
            }
            if column.offsets[s] == column.offsets[s + 1] {
                column.distinct -= 1;
            }
        }
    }

    /// Snapshots the statistics the cost-based join planner consumes:
    /// per-relation cardinality plus, per column, the distinct-symbol
    /// count and the *longest* posting run (the hot-spot statistic a skew
    /// shift moves first).  The snapshot is the input of the drift
    /// heuristic ([`StatsSnapshot::drifted`]) that gates replanning in
    /// the streaming layer: steady-state ticks keep their compiled plans,
    /// a >2× move in any counter triggers one replan.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let columns = self
            .columns
            .iter()
            .map(|relation_columns| {
                relation_columns
                    .iter()
                    .map(|column| {
                        let longest = column
                            .offsets
                            .windows(2)
                            .map(|w| w[1] - w[0])
                            .max()
                            .unwrap_or(0);
                        (column.distinct, longest)
                    })
                    .collect()
            })
            .collect();
        StatsSnapshot {
            cardinalities: self.cardinalities.clone(),
            columns,
        }
    }

    /// Approximate resident bytes of the index (offset arrays + runs), for
    /// memory reporting.
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .flatten()
            .map(|column| {
                column.offsets.len() * std::mem::size_of::<u32>()
                    + column.facts.len() * std::mem::size_of::<FactId>()
            })
            .sum()
    }
}

/// A compact snapshot of the planner-relevant statistics of a
/// [`RelationIndex`], from [`RelationIndex::stats_snapshot`]: per-relation
/// cardinalities and per-column `(distinct count, longest posting run)`
/// aggregates.
///
/// Cost-based plans (`JoinPlan::build_costed` in `ucqa-query`) are only
/// as good as the statistics they were built from; the streaming layer
/// snapshots the statistics at plan time and compares against the live
/// index each tick.  [`StatsSnapshot::drifted`] is the replan gate, and
/// [`StatsSnapshot::fingerprint`] a cheap "did anything move at all"
/// probe for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Facts per relation.
    cardinalities: Vec<u32>,
    /// Per relation, per position: `(distinct symbols, longest run)`.
    columns: Vec<Vec<(u32, u32)>>,
}

impl StatsSnapshot {
    /// `true` iff `current` has moved by more than `factor` relative to
    /// `self` in any relation cardinality or any column's longest posting
    /// run — growth or shrink; a counter moving between zero and non-zero
    /// (or a shape change, e.g. a new relation) always counts as drift.
    /// `factor` is a ratio: the streaming layer passes `2.0` for its
    /// ">2× moved ⇒ replan once" policy.
    pub fn drifted(&self, current: &StatsSnapshot, factor: f64) -> bool {
        fn moved(a: u32, b: u32, factor: f64) -> bool {
            if a == b {
                return false;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if lo == 0 {
                return true;
            }
            hi as f64 > factor * lo as f64
        }
        if self.cardinalities.len() != current.cardinalities.len()
            || self.columns.len() != current.columns.len()
        {
            return true;
        }
        for (&a, &b) in self.cardinalities.iter().zip(&current.cardinalities) {
            if moved(a, b, factor) {
                return true;
            }
        }
        for (ours, theirs) in self.columns.iter().zip(&current.columns) {
            if ours.len() != theirs.len() {
                return true;
            }
            for (&(_, run_a), &(_, run_b)) in ours.iter().zip(theirs) {
                if moved(run_a, run_b, factor) {
                    return true;
                }
            }
        }
        false
    }

    /// A 64-bit FNV-1a fingerprint over every counter of the snapshot —
    /// equal fingerprints mean (modulo collisions) no planner statistic
    /// moved at all, a stronger condition than the ratio-based
    /// [`StatsSnapshot::drifted`].
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |value: u32| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for &cardinality in &self.cardinalities {
            mix(cardinality);
        }
        for relation_columns in &self.columns {
            mix(relation_columns.len() as u32);
            for &(distinct, longest) in relation_columns {
                mix(distinct);
                mix(longest);
            }
        }
        hash
    }
}

/// Intersects two ascending fact-id runs with a galloping merge, appending
/// the common ids (in ascending order) to `out`.
///
/// When the runs' lengths are lopsided the cost is
/// `O(min · log(max / min))` instead of `O(min + max)`: each element of
/// the shorter run gallops (doubling probe, then binary search) through
/// the longer one.  Both inputs must be strictly ascending, which posting
/// runs of a [`RelationIndex`] always are.
pub fn intersect_postings(a: &[FactId], b: &[FactId], out: &mut Vec<FactId>) {
    // Gallop from the shorter side.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    for &id in small {
        if lo >= large.len() {
            break;
        }
        // Exponential probe: after the loop, the first element `>= id`
        // (if any) lies in `[lo, lo + step]`.
        let mut step = 1usize;
        while lo + step < large.len() && large[lo + step] < id {
            lo += step;
            step <<= 1;
        }
        let hi = (lo + step + 1).min(large.len());
        match large[lo..hi].binary_search(&id) {
            Ok(offset) => {
                out.push(id);
                lo += offset + 1;
            }
            Err(offset) => lo += offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn sample_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema.add_relation("S", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [(1, 1), (1, 2), (2, 1)] {
            db.insert_values("R", [Value::int(a), Value::int(b)])
                .unwrap();
        }
        db.insert_values("S", [Value::str("u")]).unwrap();
        db
    }

    fn sym_of(db: &Database, value: &Value) -> Sym {
        db.dictionary().lookup(value).expect("interned")
    }

    #[test]
    fn postings_group_facts_by_position_and_symbol() {
        let db = sample_db();
        let index = RelationIndex::build(&db);
        let r = db.schema().relation_id("R").unwrap();
        let one = sym_of(&db, &Value::int(1));
        assert_eq!(index.matches(r, 0, one), &[FactId::new(0), FactId::new(1)]);
        assert_eq!(index.matches(r, 1, one), &[FactId::new(0), FactId::new(2)]);
        assert_eq!(index.posting_len(r, 0, sym_of(&db, &Value::int(2))), 1);
        assert_eq!(index.distinct_count(r, 0), 2);
        assert_eq!(index.distinct_count(r, 1), 2);
        assert_eq!(index.relation_cardinality(r), 3);
        let s = db.schema().relation_id("S").unwrap();
        assert_eq!(
            index.matches(s, 0, sym_of(&db, &Value::str("u"))),
            &[FactId::new(3)]
        );
        assert_eq!(index.relation_cardinality(s), 1);
        // 3 facts × arity 2 + 1 fact × arity 1.
        assert_eq!(index.posting_entries(), 7);
        assert!(index.approx_bytes() > 0);
    }

    #[test]
    fn value_probe_resolves_through_the_dictionary() {
        let db = sample_db();
        let index = RelationIndex::build(&db);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(
            index.matches_value(db.dictionary(), r, 0, &Value::int(1)),
            &[FactId::new(0), FactId::new(1)]
        );
        // A never-interned value matches nothing (and does not intern).
        assert!(index
            .matches_value(db.dictionary(), r, 0, &Value::int(9))
            .is_empty());
        assert_eq!(db.dictionary().lookup(&Value::int(9)), None);
    }

    #[test]
    fn late_interned_symbols_match_nothing() {
        let mut db = sample_db();
        let index = db.share_relation_index();
        let r = db.schema().relation_id("R").unwrap();
        // Interning a new constant after the index snapshot was taken must
        // not panic — the stale index simply reports no matches.
        db.insert_values("R", [Value::int(50), Value::int(60)])
            .unwrap();
        let late = sym_of(&db, &Value::int(50));
        assert!(index.matches(r, 0, late).is_empty());
        assert_eq!(index.posting_len(r, 0, late), 0);
    }

    #[test]
    fn database_caches_and_maintains_the_index() {
        let mut db = sample_db();
        let r = db.schema().relation_id("R").unwrap();
        let one = Value::int(1);
        let len_of_one = |db: &Database| {
            let sym = db.dictionary().lookup(&one).unwrap();
            db.relation_index().posting_len(r, 0, sym)
        };
        assert_eq!(len_of_one(&db), 2);
        // Re-inserting an existing fact keeps the cache valid.
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        assert_eq!(len_of_one(&db), 2);
        assert_eq!(db.index_builds(), 1);
        assert_eq!(db.index_delta_applies(), 0);
        // A genuinely new fact patches the cached index in place — no
        // rebuild, and the patched index equals a fresh one.
        db.insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(len_of_one(&db), 3);
        assert_eq!(db.index_builds(), 1);
        assert_eq!(db.index_delta_applies(), 1);
        assert_eq!(*db.relation_index(), RelationIndex::build(&db));
        // Deleting patches too.
        let gone = crate::Fact::new(r, vec![Value::int(1), Value::int(3)]);
        let id = db.fact_id(&gone).unwrap();
        db.delete(id).unwrap();
        assert_eq!(len_of_one(&db), 2);
        assert_eq!(db.index_builds(), 1);
        assert_eq!(db.index_delta_applies(), 2);
        assert_eq!(*db.relation_index(), RelationIndex::build(&db));
        // Clones share the already-built index.
        let shared = db.share_relation_index();
        let clone = db.clone();
        assert_eq!(
            clone.relation_index().posting_entries(),
            shared.posting_entries()
        );
    }

    #[test]
    fn stats_snapshot_drifts_on_big_moves_only() {
        let mut db = sample_db();
        let r = db.schema().relation_id("R").unwrap();
        let baseline = db.relation_index().stats_snapshot();
        assert!(!baseline.drifted(&baseline, 2.0), "self-compare is stable");
        let fp = baseline.fingerprint();

        // One benign insert: cardinality 3 → 4, longest run 2 → 2 for
        // column 0 (key 3 starts a fresh run).  No ratio clears 2×, but
        // the exact fingerprint moves.
        db.insert_values("R", [Value::int(3), Value::int(5)])
            .unwrap();
        let benign = db.relation_index().stats_snapshot();
        assert!(!baseline.drifted(&benign, 2.0), "small moves stay quiet");
        assert_ne!(fp, benign.fingerprint());

        // A skew burst on key 1: its posting run grows 2 → 7, more than
        // 2× — the drift heuristic fires (in both directions).
        for i in 0..5 {
            db.insert_values("R", [Value::int(1), Value::int(100 + i)])
                .unwrap();
        }
        let skewed = db.relation_index().stats_snapshot();
        assert!(baseline.drifted(&skewed, 2.0), "hot-run growth is drift");
        assert!(skewed.drifted(&baseline, 2.0), "shrink is drift too");
        assert_eq!(
            db.relation_index()
                .posting_len(r, 0, db.dictionary().lookup(&Value::int(1)).unwrap()),
            7
        );
    }

    fn ids(raw: &[usize]) -> Vec<FactId> {
        raw.iter().copied().map(FactId::new).collect()
    }

    #[test]
    fn galloping_intersection_matches_naive() {
        let cases: &[(&[usize], &[usize])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[2]),
            (&[2], &[1, 2, 3]),
            (&[0, 5, 9], &[1, 2, 3, 4, 5, 6, 7, 8, 9]),
            (&[0, 1, 2, 3], &[4, 5, 6]),
            (&[0, 1, 2, 3], &[0, 1, 2, 3]),
            (&[3, 50, 900], &(0..1000).step_by(3).collect::<Vec<_>>()),
        ];
        for (a, b) in cases {
            let a = ids(a);
            let b = ids(b);
            let naive: Vec<FactId> = a.iter().filter(|x| b.contains(x)).copied().collect();
            let mut out = Vec::new();
            intersect_postings(&a, &b, &mut out);
            assert_eq!(out, naive, "a={a:?} b={b:?}");
            out.clear();
            intersect_postings(&b, &a, &mut out);
            assert_eq!(out, naive, "swapped a={a:?} b={b:?}");
        }
    }

    #[test]
    fn galloping_intersection_on_real_postings() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for i in 0..100i64 {
            db.insert_values("R", [Value::int(i % 4), Value::int(i % 7)])
                .unwrap();
        }
        let r = db.schema().relation_id("R").unwrap();
        let index = db.relation_index();
        let a = index.matches(r, 0, sym_of(&db, &Value::int(1)));
        let b = index.matches(r, 1, sym_of(&db, &Value::int(2)));
        let mut out = Vec::new();
        intersect_postings(a, b, &mut out);
        let naive: Vec<FactId> = a.iter().filter(|x| b.contains(x)).copied().collect();
        assert_eq!(out, naive);
        assert!(!out.is_empty());
    }
}
