//! Compact subsets of a database's facts.

use std::fmt;

use crate::FactId;

/// A subset of the facts of a fixed database, stored as a bit-set over
/// [`FactId`]s.
///
/// The repairing process of the paper only ever moves from a database `D`
/// to subsets `D' ⊆ D` (FDs are repaired by deletions only), so every
/// intermediate state of a repairing sequence, every candidate repair and
/// every operational repair is represented as a [`FactSet`] relative to the
/// original database.  Bit-sets make the per-step operations (removal,
/// membership, iteration) cheap and allocation-light.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactSet {
    words: Vec<u64>,
    universe: usize,
}

impl FactSet {
    /// Creates an empty subset of a universe with `universe` facts.
    pub fn empty(universe: usize) -> Self {
        FactSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Creates the full subset `{0, …, universe−1}`.
    pub fn full(universe: usize) -> Self {
        let mut set = FactSet::empty(universe);
        for i in 0..universe {
            set.insert(FactId::new(i));
        }
        set
    }

    /// Creates a subset from an iterator of fact ids.
    pub fn from_iter(universe: usize, facts: impl IntoIterator<Item = FactId>) -> Self {
        let mut set = FactSet::empty(universe);
        for f in facts {
            set.insert(f);
        }
        set
    }

    /// The size of the universe this subset ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Returns `true` iff `fact` is a member.
    pub fn contains(&self, fact: FactId) -> bool {
        let idx = fact.index();
        debug_assert!(idx < self.universe, "fact id out of range");
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Inserts `fact`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, fact: FactId) -> bool {
        let idx = fact.index();
        assert!(idx < self.universe, "fact id out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let newly = *word & mask == 0;
        *word |= mask;
        newly
    }

    /// Removes `fact`; returns `true` if it was present.
    pub fn remove(&mut self, fact: FactId) -> bool {
        let idx = fact.index();
        assert!(idx < self.universe, "fact id out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` iff the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Returns `true` iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &FactSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = FactId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, word)| {
            let mut word = *word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(FactId::new(wi * 64 + bit))
                }
            })
        })
    }

    /// Removes every fact in `facts` from the subset.
    pub fn remove_all(&mut self, facts: impl IntoIterator<Item = FactId>) {
        for f in facts {
            self.remove(f);
        }
    }

    /// Collects the members into a vector of fact ids.
    pub fn to_vec(&self) -> Vec<FactId> {
        self.iter().collect()
    }
}

impl fmt::Debug for FactSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_membership() {
        let mut set = FactSet::empty(70);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.insert(FactId::new(65)));
        assert!(!set.insert(FactId::new(65)));
        assert!(set.contains(FactId::new(65)));
        assert!(!set.contains(FactId::new(64)));
        assert_eq!(set.len(), 1);

        let full = FactSet::full(70);
        assert_eq!(full.len(), 70);
        assert!(set.is_subset_of(&full));
        assert!(!full.is_subset_of(&set));
    }

    #[test]
    fn remove_and_iterate() {
        let mut set = FactSet::full(10);
        assert!(set.remove(FactId::new(3)));
        assert!(!set.remove(FactId::new(3)));
        set.remove_all([FactId::new(0), FactId::new(9)]);
        let members: Vec<usize> = set.iter().map(FactId::index).collect();
        assert_eq!(members, vec![1, 2, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn subset_relation() {
        let a = FactSet::from_iter(8, [FactId::new(1), FactId::new(2)]);
        let b = FactSet::from_iter(8, [FactId::new(1), FactId::new(2), FactId::new(5)]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn debug_rendering() {
        let set = FactSet::from_iter(4, [FactId::new(0), FactId::new(3)]);
        assert_eq!(format!("{set:?}"), "{f0, f3}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut set = FactSet::empty(4);
        set.insert(FactId::new(4));
    }
}
