//! Compact subsets of a database's facts.

use std::fmt;

use crate::FactId;

/// A subset of the facts of a fixed database, stored as a bit-set over
/// [`FactId`]s.
///
/// The repairing process of the paper only ever moves from a database `D`
/// to subsets `D' ⊆ D` (FDs are repaired by deletions only), so every
/// intermediate state of a repairing sequence, every candidate repair and
/// every operational repair is represented as a [`FactSet`] relative to the
/// original database.  Bit-sets make the per-step operations (removal,
/// membership, iteration) cheap and allocation-light.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactSet {
    words: Vec<u64>,
    universe: usize,
}

impl Default for FactSet {
    /// An empty subset of the empty universe — the state of a scratch
    /// buffer before its first `copy_from`/resize (see e.g.
    /// [`crate::LiveOps`], whose `Default` relies on this).
    fn default() -> Self {
        FactSet::empty(0)
    }
}

impl FactSet {
    /// Creates an empty subset of a universe with `universe` facts.
    pub fn empty(universe: usize) -> Self {
        FactSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Creates the full subset `{0, …, universe−1}`.
    pub fn full(universe: usize) -> Self {
        let mut set = FactSet::empty(universe);
        set.fill();
        set
    }

    /// Creates a subset from an iterator of fact ids.
    pub fn from_iter(universe: usize, facts: impl IntoIterator<Item = FactId>) -> Self {
        let mut set = FactSet::empty(universe);
        for f in facts {
            set.insert(f);
        }
        set
    }

    /// The size of the universe this subset ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Returns `true` iff `fact` is a member.
    pub fn contains(&self, fact: FactId) -> bool {
        let idx = fact.index();
        debug_assert!(idx < self.universe, "fact id out of range");
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Inserts `fact`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, fact: FactId) -> bool {
        let idx = fact.index();
        assert!(idx < self.universe, "fact id out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let newly = *word & mask == 0;
        *word |= mask;
        newly
    }

    /// Removes `fact`; returns `true` if it was present.
    pub fn remove(&mut self, fact: FactId) -> bool {
        let idx = fact.index();
        assert!(idx < self.universe, "fact id out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` iff the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Returns `true` iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &FactSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` iff `other ⊆ self`, i.e. `self` contains every member
    /// of `other`.
    ///
    /// This is the per-sample kernel of the compiled-lineage entailment
    /// check ("some witness ⊆ repair"): a handful of word-level AND/compare
    /// operations, no iteration over members.
    pub fn contains_all(&self, other: &FactSet) -> bool {
        other.is_subset_of(self)
    }

    /// Alias for [`FactSet::contains_all`] mirroring the set-theoretic name.
    pub fn is_superset_of(&self, other: &FactSet) -> bool {
        other.is_subset_of(self)
    }

    /// Removes every member, keeping the allocation.
    pub fn clear(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
    }

    /// Inserts every element of the universe, filling whole `u64` words and
    /// masking the final partial word.
    pub fn fill(&mut self) {
        for word in &mut self.words {
            *word = u64::MAX;
        }
        self.mask_tail();
    }

    /// Widens the universe to `universe` facts, keeping the membership of
    /// every existing id (new ids start absent).  Shrinking is not
    /// supported — fact ids are never reused, so universes only grow.
    pub fn grow(&mut self, universe: usize) {
        debug_assert!(
            universe >= self.universe,
            "FactSet universes only grow ({} → {universe})",
            self.universe
        );
        self.words.resize(universe.div_ceil(64), 0);
        self.universe = universe;
    }

    /// Returns `true` iff `self ∩ other` is non-empty.  The sets may have
    /// different universes: ids past the shorter universe are absent from
    /// it, so only the common word prefix is scanned.
    pub fn intersects(&self, other: &FactSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &FactSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union: `self ← self ∪ other`.
    pub fn union_with(&mut self, other: &FactSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self ← self ∖ other`.
    pub fn difference_with(&mut self, other: &FactSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Copies the contents of `other` into `self` without allocating.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn copy_from(&mut self, other: &FactSet) {
        assert_eq!(
            self.universe, other.universe,
            "copy_from requires equal universes"
        );
        self.words.copy_from_slice(&other.words);
    }

    /// Zeroes the bits above `universe` in the final partial word.
    fn mask_tail(&mut self) {
        let tail_bits = self.universe % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = FactId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, word)| {
            let mut word = *word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(FactId::new(wi * 64 + bit))
                }
            })
        })
    }

    /// Removes every fact in `facts` from the subset.
    pub fn remove_all(&mut self, facts: impl IntoIterator<Item = FactId>) {
        for f in facts {
            self.remove(f);
        }
    }

    /// Collects the members into a vector of fact ids.
    pub fn to_vec(&self) -> Vec<FactId> {
        self.iter().collect()
    }
}

impl fmt::Debug for FactSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_membership() {
        let mut set = FactSet::empty(70);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.insert(FactId::new(65)));
        assert!(!set.insert(FactId::new(65)));
        assert!(set.contains(FactId::new(65)));
        assert!(!set.contains(FactId::new(64)));
        assert_eq!(set.len(), 1);

        let full = FactSet::full(70);
        assert_eq!(full.len(), 70);
        assert!(set.is_subset_of(&full));
        assert!(!full.is_subset_of(&set));
    }

    #[test]
    fn remove_and_iterate() {
        let mut set = FactSet::full(10);
        assert!(set.remove(FactId::new(3)));
        assert!(!set.remove(FactId::new(3)));
        set.remove_all([FactId::new(0), FactId::new(9)]);
        let members: Vec<usize> = set.iter().map(FactId::index).collect();
        assert_eq!(members, vec![1, 2, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn subset_relation() {
        let a = FactSet::from_iter(8, [FactId::new(1), FactId::new(2)]);
        let b = FactSet::from_iter(8, [FactId::new(1), FactId::new(2), FactId::new(5)]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn debug_rendering() {
        let set = FactSet::from_iter(4, [FactId::new(0), FactId::new(3)]);
        assert_eq!(format!("{set:?}"), "{f0, f3}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut set = FactSet::empty(4);
        set.insert(FactId::new(4));
    }

    #[test]
    fn full_fills_words_and_masks_the_tail() {
        // Universe sizes around word boundaries: the tail word must not
        // carry bits past the universe, or len()/iter() would be wrong.
        for universe in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let full = FactSet::full(universe);
            assert_eq!(full.len(), universe, "universe {universe}");
            assert_eq!(full.iter().count(), universe, "universe {universe}");
            if universe > 0 {
                assert!(full.contains(FactId::new(universe - 1)));
            }
            let mut refilled = FactSet::empty(universe);
            refilled.fill();
            assert_eq!(refilled, full);
        }
    }

    #[test]
    fn superset_and_contains_all() {
        let a = FactSet::from_iter(100, [FactId::new(1), FactId::new(70)]);
        let b = FactSet::from_iter(100, [FactId::new(1), FactId::new(70), FactId::new(99)]);
        assert!(b.contains_all(&a));
        assert!(b.is_superset_of(&a));
        assert!(!a.contains_all(&b));
        assert!(a.contains_all(&FactSet::empty(100)));
    }

    #[test]
    fn clear_and_copy_from_reuse_the_allocation() {
        let mut set = FactSet::full(130);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.universe(), 130);
        let other = FactSet::from_iter(130, [FactId::new(0), FactId::new(129)]);
        set.copy_from(&other);
        assert_eq!(set, other);
    }

    #[test]
    fn word_level_set_operations() {
        let mut a = FactSet::from_iter(70, [FactId::new(1), FactId::new(2), FactId::new(69)]);
        let b = FactSet::from_iter(70, [FactId::new(2), FactId::new(3), FactId::new(69)]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![FactId::new(2), FactId::new(69)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        a.difference_with(&b);
        assert_eq!(a.to_vec(), vec![FactId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "equal universes")]
    fn copy_from_rejects_mismatched_universes() {
        let mut a = FactSet::empty(10);
        a.copy_from(&FactSet::empty(11));
    }
}
