//! Constants (the set **C** of the paper).

use std::fmt;
use std::sync::Arc;

/// A constant value appearing in a fact.
///
/// The paper works over an abstract countably infinite set of constants
/// **C**; for practical workloads we support integers and interned strings.
/// Values are cheap to clone (`i64` or an `Arc<str>`), hashable and totally
/// ordered so they can serve as block keys and canonical-ordering inputs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant (reference-counted, cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Constructs a string constant.
    pub fn str(text: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(text.as_ref()))
    }

    /// Constructs an integer constant.
    pub fn int(value: i64) -> Self {
        Value::Int(value)
    }

    /// Returns the integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<i32> for Value {
    fn from(value: i32) -> Self {
        Value::Int(i64::from(value))
    }
}

impl From<u32> for Value {
    fn from(value: u32) -> Self {
        Value::Int(i64::from(value))
    }
}

impl From<usize> for Value {
    fn from(value: usize) -> Self {
        Value::Int(value as i64)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::str(value)
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::str(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_accessors() {
        let i = Value::int(42);
        let s = Value::str("alice");
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
        assert_eq!(s.as_str(), Some("alice"));
        assert_eq!(s.as_int(), None);
    }

    #[test]
    fn equality_and_hashing() {
        let mut set = HashSet::new();
        set.insert(Value::str("a"));
        set.insert(Value::str("a"));
        set.insert(Value::int(1));
        set.insert(Value::int(1));
        assert_eq!(set.len(), 2);
        assert_ne!(Value::int(1), Value::str("1"));
    }

    #[test]
    fn ordering_is_total() {
        let mut values = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(format!("{:?}", Value::str("x")), "\"x\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(5usize), Value::int(5));
    }
}
