//! Facts `R(c₁,…,cₙ)` and fact identifiers.

use std::fmt;

use crate::{AttributeId, RelationId, Schema, Value};

/// Identifier of a fact within a [`crate::Database`] (dense, zero-based).
///
/// All repair machinery (operations, sequences, subsets) works over fact
/// ids rather than owned facts, which keeps the hot paths allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub(crate) u32);

impl FactId {
    /// Constructs a fact id from a raw index.
    pub fn new(index: usize) -> Self {
        FactId(index as u32)
    }

    /// The raw index of this fact within its database.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A fact `R(c₁,…,cₙ)` over a schema.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    relation: RelationId,
    values: Vec<Value>,
}

impl Fact {
    /// Constructs a fact without arity checking (checked on insertion into a
    /// [`crate::Database`]).
    pub fn new(relation: RelationId, values: Vec<Value>) -> Self {
        Fact { relation, values }
    }

    /// The relation name of this fact.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The constants of this fact, in positional order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The constant at attribute position `attribute` — the paper's
    /// `f[Aᵢ]`.
    pub fn value_at(&self, attribute: AttributeId) -> &Value {
        &self.values[attribute.index()]
    }

    /// The arity of this fact.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Renders the fact using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FactDisplay<'a> {
        FactDisplay { fact: self, schema }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}(", self.relation.0)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

/// Helper for displaying a fact with its relation name resolved against a
/// schema.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.relation_name(self.fact.relation))?;
        for (i, v) in self.fact.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["A", "B"]).unwrap();
        let fact = Fact::new(r, vec![Value::int(1), Value::str("x")]);
        assert_eq!(fact.relation(), r);
        assert_eq!(fact.arity(), 2);
        assert_eq!(fact.value_at(AttributeId::new(0)), &Value::int(1));
        assert_eq!(fact.value_at(AttributeId::new(1)), &Value::str("x"));
    }

    #[test]
    fn display_with_schema() {
        let mut schema = Schema::new();
        let emp = schema.add_relation("Emp", &["id", "name"]).unwrap();
        let fact = Fact::new(emp, vec![Value::int(1), Value::str("Alice")]);
        assert_eq!(fact.display(&schema).to_string(), "Emp(1, Alice)");
    }

    #[test]
    fn fact_ids_are_ordered() {
        assert!(FactId::new(0) < FactId::new(1));
        assert_eq!(FactId::new(3).index(), 3);
        assert_eq!(FactId::new(2).to_string(), "f2");
    }
}
