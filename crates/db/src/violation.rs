//! FD violations `V(D, Σ)` (Definition 3.2).

use crate::{Database, FactId, FactSet, FdId, FdSet, FunctionalDependency};

/// A single violation: an FD `φ ∈ Σ` together with a pair of facts
/// `{f, g} ⊆ D` such that `{f, g} ⊭ φ`.
///
/// The pair is stored with `first < second` so that violations are
/// canonical and can be deduplicated / compared directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Violation {
    /// The violated FD.
    pub fd: FdId,
    /// The smaller fact id of the violating pair.
    pub first: FactId,
    /// The larger fact id of the violating pair.
    pub second: FactId,
}

impl Violation {
    /// Constructs a violation, normalising the pair order.
    pub fn new(fd: FdId, a: FactId, b: FactId) -> Self {
        let (first, second) = if a <= b { (a, b) } else { (b, a) };
        Violation { fd, first, second }
    }

    /// Returns `true` iff `fact` is one of the two facts of this violation.
    pub fn involves(&self, fact: FactId) -> bool {
        self.first == fact || self.second == fact
    }

    /// The two facts of the violation as a pair.
    pub fn pair(&self) -> (FactId, FactId) {
        (self.first, self.second)
    }
}

/// Appends the violations of `fd` among the facts in `live` to `out`.
///
/// This is the shared detection kernel: it sorts the live facts by the
/// FD's left-hand-side *symbols* (dense `u32`s straight off the relation's
/// columns — no `Value` hashing or cloning), groups equal-LHS facts as
/// consecutive runs, and checks pairs within each run for a differing
/// right-hand-side symbol.  The first two LHS symbols are packed into a
/// cached `u64` sort key so the comparator is a plain integer compare;
/// FDs with longer left-hand sides fall back to comparing the remaining
/// columns on key ties.  Interning is injective, so symbol (in)equality
/// is value (in)equality; the caller canonicalises `out` by a final
/// sort + dedup, which also erases the sort-order dependence of the
/// emission order.
fn scan_fd(
    db: &Database,
    fd_id: FdId,
    fd: &FunctionalDependency,
    live: &[FactId],
    keyed: &mut Vec<(u64, FactId)>,
    out: &mut Vec<Violation>,
) {
    let columns = db.columns_of(fd.relation());
    let lhs: Vec<usize> = fd.lhs().iter().map(|a| a.index()).collect();
    let rhs: Vec<usize> = fd.rhs().iter().map(|a| a.index()).collect();
    let tail = &lhs[lhs.len().min(2)..];
    keyed.clear();
    keyed.extend(live.iter().map(|&fact| {
        let row = db.row_of(fact);
        let hi = columns[lhs[0]][row].0 as u64;
        let lo = lhs.get(1).map_or(0, |&attr| columns[attr][row].0 as u64);
        ((hi << 32) | lo, fact)
    }));
    let tail_cmp = |a: FactId, b: FactId| {
        let (ra, rb) = (db.row_of(a), db.row_of(b));
        tail.iter()
            .map(|&attr| columns[attr][ra].cmp(&columns[attr][rb]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    if tail.is_empty() {
        keyed.sort_unstable_by_key(|&(key, _)| key);
    } else {
        keyed.sort_unstable_by(|&(ka, a), &(kb, b)| ka.cmp(&kb).then_with(|| tail_cmp(a, b)));
    }
    let same_group = |a: &(u64, FactId), b: &(u64, FactId)| {
        a.0 == b.0 && (tail.is_empty() || tail_cmp(a.1, b.1).is_eq())
    };
    let rhs_differs = |a: FactId, b: FactId| {
        let (ra, rb) = (db.row_of(a), db.row_of(b));
        rhs.iter()
            .any(|&attr| columns[attr][ra] != columns[attr][rb])
    };
    let mut start = 0;
    while start < keyed.len() {
        let mut end = start + 1;
        while end < keyed.len() && same_group(&keyed[start], &keyed[end]) {
            end += 1;
        }
        for i in start..end {
            for j in (i + 1)..end {
                if rhs_differs(keyed[i].1, keyed[j].1) {
                    out.push(Violation::new(fd_id, keyed[i].1, keyed[j].1));
                }
            }
        }
        start = end;
    }
}

/// The set `V(D', Σ)` of violations of a sub-database `D' ⊆ D`.
#[derive(Debug, Clone, Default)]
pub struct ViolationSet {
    violations: Vec<Violation>,
    /// Sort-key scratch of [`scan_fd`], reused across recomputes so the
    /// walk's rescan loop stays allocation-free at steady state.
    keyed: Vec<(u64, FactId)>,
}

impl ViolationSet {
    /// Computes `V(D', Σ)` for the sub-database `subset ⊆ D`.
    ///
    /// Facts are grouped per relation and FD left-hand side (by sorting on
    /// the interned symbol columns) so that only facts agreeing on the LHS
    /// are compared pairwise, which keeps detection close to linear for
    /// databases with small blocks.
    pub fn compute(db: &Database, sigma: &FdSet, subset: &FactSet) -> Self {
        let mut set = ViolationSet::default();
        set.recompute(db, sigma, subset, &mut Vec::new());
        set
    }

    /// Computes `V(D, Σ)` for the whole database.
    pub fn of_database(db: &Database, sigma: &FdSet) -> Self {
        ViolationSet::compute(db, sigma, &db.all_facts())
    }

    /// Recomputes `V(D', Σ)` into `self`, reusing its allocation and the
    /// caller-provided `live` scratch buffer, so repeated scans over
    /// single-attribute left-hand sides (the inner loop of the
    /// uniform-operations walk) perform no heap allocation once the
    /// buffers have grown to their steady-state capacity.
    ///
    /// Instead of hashing LHS value tuples (which would allocate a key per
    /// fact), single-attribute left-hand sides walk the relation index's
    /// posting runs — which *are* the LHS groups, so grouping costs
    /// nothing — and composite left-hand sides sort the live facts by
    /// their LHS symbols (packed into cached `u64` sort keys).
    pub fn recompute(
        &mut self,
        db: &Database,
        sigma: &FdSet,
        subset: &FactSet,
        live: &mut Vec<FactId>,
    ) {
        self.violations.clear();
        for (fd_id, fd) in sigma.iter() {
            if fd.lhs().len() == 1 {
                let attr = fd.lhs().iter().next().expect("non-empty LHS").index();
                let columns = db.columns_of(fd.relation());
                let rhs_differs = |a: FactId, b: FactId| {
                    let (ra, rb) = (db.row_of(a), db.row_of(b));
                    fd.rhs()
                        .iter()
                        .any(|r| columns[r.index()][ra] != columns[r.index()][rb])
                };
                for run in db.relation_index().posting_runs(fd.relation(), attr) {
                    live.clear();
                    live.extend(run.iter().copied().filter(|&f| subset.contains(f)));
                    for (i, &a) in live.iter().enumerate() {
                        for &b in &live[i + 1..] {
                            if rhs_differs(a, b) {
                                self.violations.push(Violation::new(fd_id, a, b));
                            }
                        }
                    }
                }
            } else {
                live.clear();
                live.extend(
                    db.facts_of(fd.relation())
                        .iter()
                        .copied()
                        .filter(|&f| subset.contains(f)),
                );
                scan_fd(db, fd_id, fd, live, &mut self.keyed, &mut self.violations);
            }
        }
        self.violations.sort_unstable();
        self.violations.dedup();
    }

    /// The violations, sorted canonically.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Returns `true` iff there are no violations, i.e. `D' ⊨ Σ`.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Iterates over the violations.
    pub fn iter(&self) -> impl Iterator<Item = &Violation> + '_ {
        self.violations.iter()
    }

    /// The distinct unordered pairs `{f, g}` appearing in some violation
    /// (the same pair may violate several FDs).
    pub fn conflicting_pairs(&self) -> Vec<(FactId, FactId)> {
        let mut pairs = Vec::new();
        self.conflicting_pairs_into(&mut pairs);
        pairs
    }

    /// As [`ViolationSet::conflicting_pairs`], writing into a reused buffer
    /// (cleared first) so hot callers perform no per-call allocation.
    pub fn conflicting_pairs_into(&self, out: &mut Vec<(FactId, FactId)>) {
        out.clear();
        out.extend(self.violations.iter().map(Violation::pair));
        out.sort_unstable();
        out.dedup();
    }

    /// The facts involved in at least one violation.
    pub fn conflicting_facts(&self) -> Vec<FactId> {
        let mut facts = Vec::new();
        self.conflicting_facts_into(&mut facts);
        facts
    }

    /// As [`ViolationSet::conflicting_facts`], writing into a reused buffer
    /// (cleared first) so hot callers perform no per-call allocation.
    pub fn conflicting_facts_into(&self, out: &mut Vec<FactId>) {
        out.clear();
        out.extend(self.violations.iter().flat_map(|v| [v.first, v.second]));
        out.sort_unstable();
        out.dedup();
    }

    /// The violations involving a given fact.
    pub fn involving(&self, fact: FactId) -> impl Iterator<Item = &Violation> + '_ {
        self.violations.iter().filter(move |v| v.involves(fact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, FunctionalDependency, Schema, Value};

    /// The running example of the paper (Example 3.6).
    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn running_example_violations_match_paper() {
        // V(D, Σ) = {(φ1, {f1, f2}), (φ2, {f2, f3})}.
        let (db, sigma) = running_example();
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.len(), 2);
        let expected = vec![
            Violation::new(FdId::new(0), FactId::new(0), FactId::new(1)),
            Violation::new(FdId::new(1), FactId::new(1), FactId::new(2)),
        ];
        assert_eq!(violations.violations(), expected.as_slice());
        assert_eq!(
            violations.conflicting_facts(),
            vec![FactId::new(0), FactId::new(1), FactId::new(2)]
        );
        assert_eq!(violations.conflicting_pairs().len(), 2);
    }

    #[test]
    fn violations_of_consistent_subset_are_empty() {
        let (db, sigma) = running_example();
        let mut subset = db.all_facts();
        subset.remove(FactId::new(1)); // remove f2
        let violations = ViolationSet::compute(&db, &sigma, &subset);
        assert!(violations.is_empty());
    }

    #[test]
    fn involving_filters_by_fact() {
        let (db, sigma) = running_example();
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.involving(FactId::new(1)).count(), 2);
        assert_eq!(violations.involving(FactId::new(0)).count(), 1);
    }

    #[test]
    fn recompute_matches_compute_on_all_subsets() {
        let (db, sigma) = running_example();
        let mut reused = ViolationSet::default();
        let mut scratch = Vec::new();
        for mask in 0u32..(1 << db.len()) {
            let subset = FactSet::from_iter(
                db.len(),
                (0..db.len())
                    .filter(|i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            );
            let fresh = ViolationSet::compute(&db, &sigma, &subset);
            reused.recompute(&db, &sigma, &subset, &mut scratch);
            assert_eq!(fresh.violations(), reused.violations(), "mask {mask:b}");
        }
    }

    #[test]
    fn symbol_kernel_matches_pairwise_value_check() {
        // Brute-force reference: every pair of live facts, checked through
        // the Value-level FunctionalDependency::satisfied_by_pair shell.
        let (db, sigma) = running_example();
        let all = db.all_facts();
        let violations = ViolationSet::compute(&db, &sigma, &all);
        let mut reference = Vec::new();
        for (fd_id, fd) in sigma.iter() {
            for a in db.fact_ids() {
                for b in db.fact_ids() {
                    if a < b && !fd.satisfied_by_pair(&db.fact(a), &db.fact(b)) {
                        reference.push(Violation::new(fd_id, a, b));
                    }
                }
            }
        }
        reference.sort_unstable();
        assert_eq!(violations.violations(), reference.as_slice());
    }

    #[test]
    fn pair_normalisation() {
        let v = Violation::new(FdId::new(0), FactId::new(5), FactId::new(2));
        assert_eq!(v.pair(), (FactId::new(2), FactId::new(5)));
        assert!(v.involves(FactId::new(5)));
        assert!(!v.involves(FactId::new(3)));
    }

    #[test]
    fn same_pair_violating_two_fds_counted_twice() {
        // Both FDs violated by the same pair → two violations, one pair.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["A", "B"]).unwrap());
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations.conflicting_pairs().len(), 1);
    }
}
