//! FD violations `V(D, Σ)` (Definition 3.2).

use std::collections::HashMap;

use crate::{Database, FactId, FactSet, FdId, FdSet, Value};

/// A single violation: an FD `φ ∈ Σ` together with a pair of facts
/// `{f, g} ⊆ D` such that `{f, g} ⊭ φ`.
///
/// The pair is stored with `first < second` so that violations are
/// canonical and can be deduplicated / compared directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Violation {
    /// The violated FD.
    pub fd: FdId,
    /// The smaller fact id of the violating pair.
    pub first: FactId,
    /// The larger fact id of the violating pair.
    pub second: FactId,
}

impl Violation {
    /// Constructs a violation, normalising the pair order.
    pub fn new(fd: FdId, a: FactId, b: FactId) -> Self {
        let (first, second) = if a <= b { (a, b) } else { (b, a) };
        Violation { fd, first, second }
    }

    /// Returns `true` iff `fact` is one of the two facts of this violation.
    pub fn involves(&self, fact: FactId) -> bool {
        self.first == fact || self.second == fact
    }

    /// The two facts of the violation as a pair.
    pub fn pair(&self) -> (FactId, FactId) {
        (self.first, self.second)
    }
}

/// The set `V(D', Σ)` of violations of a sub-database `D' ⊆ D`.
#[derive(Debug, Clone, Default)]
pub struct ViolationSet {
    violations: Vec<Violation>,
}

impl ViolationSet {
    /// Computes `V(D', Σ)` for the sub-database `subset ⊆ D`.
    ///
    /// Facts are grouped per relation and FD left-hand-side value so that
    /// only facts agreeing on the LHS are compared pairwise, which keeps
    /// detection close to linear for databases with small blocks.
    pub fn compute(db: &Database, sigma: &FdSet, subset: &FactSet) -> Self {
        let mut violations = Vec::new();
        for (fd_id, fd) in sigma.iter() {
            // Group the live facts of the FD's relation by their LHS values.
            let mut groups: HashMap<Vec<Value>, Vec<FactId>> = HashMap::new();
            for &fact_id in db.facts_of(fd.relation()) {
                if !subset.contains(fact_id) {
                    continue;
                }
                let fact = db.fact(fact_id);
                let key: Vec<Value> = fd
                    .lhs()
                    .iter()
                    .map(|attr| fact.value_at(*attr).clone())
                    .collect();
                groups.entry(key).or_default().push(fact_id);
            }
            for group in groups.values() {
                for (i, &a) in group.iter().enumerate() {
                    for &b in group.iter().skip(i + 1) {
                        if !fd.satisfied_by_pair(db.fact(a), db.fact(b)) {
                            violations.push(Violation::new(fd_id, a, b));
                        }
                    }
                }
            }
        }
        violations.sort();
        violations.dedup();
        ViolationSet { violations }
    }

    /// Computes `V(D, Σ)` for the whole database.
    pub fn of_database(db: &Database, sigma: &FdSet) -> Self {
        ViolationSet::compute(db, sigma, &db.all_facts())
    }

    /// Recomputes `V(D', Σ)` into `self`, reusing its allocation and the
    /// caller-provided `live` scratch buffer, so repeated scans (the inner
    /// loop of the uniform-operations walk) perform no heap allocation once
    /// the buffers have grown to their steady-state capacity.
    ///
    /// Instead of hashing LHS value tuples (which would allocate a key per
    /// fact), the live facts of each FD's relation are sorted by their LHS
    /// values in place and grouped as consecutive runs.
    pub fn recompute(
        &mut self,
        db: &Database,
        sigma: &FdSet,
        subset: &FactSet,
        live: &mut Vec<FactId>,
    ) {
        self.violations.clear();
        for (fd_id, fd) in sigma.iter() {
            live.clear();
            live.extend(
                db.facts_of(fd.relation())
                    .iter()
                    .copied()
                    .filter(|&f| subset.contains(f)),
            );
            let lhs_cmp = |a: &FactId, b: &FactId| {
                let fa = db.fact(*a);
                let fb = db.fact(*b);
                fd.lhs()
                    .iter()
                    .map(|attr| fa.value_at(*attr).cmp(fb.value_at(*attr)))
                    .find(|o| o.is_ne())
                    .unwrap_or(std::cmp::Ordering::Equal)
            };
            live.sort_unstable_by(lhs_cmp);
            let mut start = 0;
            while start < live.len() {
                let mut end = start + 1;
                while end < live.len() && lhs_cmp(&live[start], &live[end]).is_eq() {
                    end += 1;
                }
                for i in start..end {
                    for j in (i + 1)..end {
                        if !fd.satisfied_by_pair(db.fact(live[i]), db.fact(live[j])) {
                            self.violations
                                .push(Violation::new(fd_id, live[i], live[j]));
                        }
                    }
                }
                start = end;
            }
        }
        self.violations.sort_unstable();
        self.violations.dedup();
    }

    /// The violations, sorted canonically.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Returns `true` iff there are no violations, i.e. `D' ⊨ Σ`.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Iterates over the violations.
    pub fn iter(&self) -> impl Iterator<Item = &Violation> + '_ {
        self.violations.iter()
    }

    /// The distinct unordered pairs `{f, g}` appearing in some violation
    /// (the same pair may violate several FDs).
    pub fn conflicting_pairs(&self) -> Vec<(FactId, FactId)> {
        let mut pairs = Vec::new();
        self.conflicting_pairs_into(&mut pairs);
        pairs
    }

    /// As [`ViolationSet::conflicting_pairs`], writing into a reused buffer
    /// (cleared first) so hot callers perform no per-call allocation.
    pub fn conflicting_pairs_into(&self, out: &mut Vec<(FactId, FactId)>) {
        out.clear();
        out.extend(self.violations.iter().map(Violation::pair));
        out.sort_unstable();
        out.dedup();
    }

    /// The facts involved in at least one violation.
    pub fn conflicting_facts(&self) -> Vec<FactId> {
        let mut facts = Vec::new();
        self.conflicting_facts_into(&mut facts);
        facts
    }

    /// As [`ViolationSet::conflicting_facts`], writing into a reused buffer
    /// (cleared first) so hot callers perform no per-call allocation.
    pub fn conflicting_facts_into(&self, out: &mut Vec<FactId>) {
        out.clear();
        out.extend(self.violations.iter().flat_map(|v| [v.first, v.second]));
        out.sort_unstable();
        out.dedup();
    }

    /// The violations involving a given fact.
    pub fn involving(&self, fact: FactId) -> impl Iterator<Item = &Violation> + '_ {
        self.violations.iter().filter(move |v| v.involves(fact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, FunctionalDependency, Schema};

    /// The running example of the paper (Example 3.6).
    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn running_example_violations_match_paper() {
        // V(D, Σ) = {(φ1, {f1, f2}), (φ2, {f2, f3})}.
        let (db, sigma) = running_example();
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.len(), 2);
        let expected = vec![
            Violation::new(FdId::new(0), FactId::new(0), FactId::new(1)),
            Violation::new(FdId::new(1), FactId::new(1), FactId::new(2)),
        ];
        assert_eq!(violations.violations(), expected.as_slice());
        assert_eq!(
            violations.conflicting_facts(),
            vec![FactId::new(0), FactId::new(1), FactId::new(2)]
        );
        assert_eq!(violations.conflicting_pairs().len(), 2);
    }

    #[test]
    fn violations_of_consistent_subset_are_empty() {
        let (db, sigma) = running_example();
        let mut subset = db.all_facts();
        subset.remove(FactId::new(1)); // remove f2
        let violations = ViolationSet::compute(&db, &sigma, &subset);
        assert!(violations.is_empty());
    }

    #[test]
    fn involving_filters_by_fact() {
        let (db, sigma) = running_example();
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.involving(FactId::new(1)).count(), 2);
        assert_eq!(violations.involving(FactId::new(0)).count(), 1);
    }

    #[test]
    fn recompute_matches_compute_on_all_subsets() {
        let (db, sigma) = running_example();
        let mut reused = ViolationSet::default();
        let mut scratch = Vec::new();
        for mask in 0u32..(1 << db.len()) {
            let subset = FactSet::from_iter(
                db.len(),
                (0..db.len())
                    .filter(|i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            );
            let fresh = ViolationSet::compute(&db, &sigma, &subset);
            reused.recompute(&db, &sigma, &subset, &mut scratch);
            assert_eq!(fresh.violations(), reused.violations(), "mask {mask:b}");
        }
    }

    #[test]
    fn pair_normalisation() {
        let v = Violation::new(FdId::new(0), FactId::new(5), FactId::new(2));
        assert_eq!(v.pair(), (FactId::new(2), FactId::new(5)));
        assert!(v.involves(FactId::new(5)));
        assert!(!v.involves(FactId::new(3)));
    }

    #[test]
    fn same_pair_violating_two_fds_counted_twice() {
        // Both FDs violated by the same pair → two violations, one pair.
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["A", "B"]).unwrap());
        let violations = ViolationSet::of_database(&db, &sigma);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations.conflicting_pairs().len(), 1);
    }
}
