//! Conflict graphs `CG(D, Σ)`.

use crate::{Database, FactId, FactSet, FdSet, ViolationSet};

/// The conflict graph `CG(D, Σ)`: nodes are the facts of `D`, and there is
/// an edge between `f` and `g` iff `{f, g} ⊭ Σ`.
///
/// The conflict graph drives the independent-set correspondences of
/// Lemmas 5.4 and E.4 and the reductions of Appendix B.3/E.1.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    adjacency: Vec<Vec<FactId>>,
    edge_count: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of `D` w.r.t. `Σ`.
    pub fn build(db: &Database, sigma: &FdSet) -> Self {
        let violations = ViolationSet::of_database(db, sigma);
        Self::from_violations(db.len(), &violations)
    }

    /// Builds a conflict graph over `universe` facts from a precomputed
    /// violation set.
    pub fn from_violations(universe: usize, violations: &ViolationSet) -> Self {
        // Push violation endpoints directly (no intermediate deduplicated
        // pair vector); the per-node sort/dedup below removes duplicate
        // edges from pairs violating several FDs.
        let mut adjacency = vec![Vec::new(); universe];
        for v in violations.iter() {
            let (a, b) = v.pair();
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
        }
        for neighbours in &mut adjacency {
            neighbours.sort();
            neighbours.dedup();
        }
        let edge_count = adjacency.iter().map(Vec::len).sum::<usize>() / 2;
        ConflictGraph {
            adjacency,
            edge_count,
        }
    }

    /// Number of nodes (= facts of `D`).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (= conflicting pairs).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The neighbours of a fact.
    pub fn neighbours(&self, fact: FactId) -> &[FactId] {
        &self.adjacency[fact.index()]
    }

    /// The degree of a fact.
    pub fn degree(&self, fact: FactId) -> usize {
        self.adjacency[fact.index()].len()
    }

    /// The maximum degree Δ of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.adjacency[i].len())
            .max()
            .unwrap_or(0)
    }

    /// All edges as canonical `(smaller, larger)` pairs.
    pub fn edges(&self) -> Vec<(FactId, FactId)> {
        let mut edges = Vec::with_capacity(self.edge_count);
        for (i, neighbours) in self.adjacency.iter().enumerate() {
            let a = FactId::new(i);
            for &b in neighbours {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Returns `true` iff the graph is connected (vacuously true for the
    /// empty graph and single nodes).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut seen = 1usize;
        while let Some(node) = stack.pop() {
            for &next in &self.adjacency[node] {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    seen += 1;
                    stack.push(next.index());
                }
            }
        }
        seen == n
    }

    /// Returns `true` iff the graph is *non-trivially connected*: it has at
    /// least two nodes and is connected (Appendix B.3).
    pub fn is_non_trivially_connected(&self) -> bool {
        self.node_count() >= 2 && self.is_connected()
    }

    /// The connected components, each as a sorted list of fact ids.
    pub fn connected_components(&self) -> Vec<Vec<FactId>> {
        let n = self.node_count();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            visited[start] = true;
            while let Some(node) = stack.pop() {
                component.push(FactId::new(node));
                for &next in &self.adjacency[node] {
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push(next.index());
                    }
                }
            }
            component.sort();
            components.push(component);
        }
        components
    }

    /// Returns `true` iff `subset` is an independent set of the graph.
    pub fn is_independent_set(&self, subset: &FactSet) -> bool {
        subset.iter().all(|fact| {
            self.adjacency[fact.index()]
                .iter()
                .all(|neighbour| !subset.contains(*neighbour))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, FunctionalDependency, Schema, Value};

    fn running_example() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn running_example_graph_is_a_path() {
        let (db, sigma) = running_example();
        let cg = ConflictGraph::build(&db, &sigma);
        assert_eq!(cg.node_count(), 3);
        assert_eq!(cg.edge_count(), 2);
        assert_eq!(cg.degree(FactId::new(1)), 2); // f2 conflicts with both
        assert_eq!(cg.max_degree(), 2);
        assert!(cg.is_connected());
        assert!(cg.is_non_trivially_connected());
        assert_eq!(cg.connected_components().len(), 1);
    }

    #[test]
    fn independent_set_check() {
        let (db, sigma) = running_example();
        let cg = ConflictGraph::build(&db, &sigma);
        let independent = FactSet::from_iter(db.len(), [FactId::new(0), FactId::new(2)]); // {f1, f3}
        assert!(cg.is_independent_set(&independent));
        let dependent = FactSet::from_iter(db.len(), [FactId::new(0), FactId::new(1)]);
        assert!(!cg.is_independent_set(&dependent));
        assert!(cg.is_independent_set(&FactSet::empty(db.len())));
    }

    #[test]
    fn disconnected_graph_components() {
        // Two independent conflicting pairs (different key values).
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(2), Value::int(1)])
            .unwrap();
        db.insert_values("R", [Value::int(2), Value::int(2)])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        let cg = ConflictGraph::build(&db, &sigma);
        assert_eq!(cg.edge_count(), 2);
        assert!(!cg.is_connected());
        assert!(!cg.is_non_trivially_connected());
        assert_eq!(cg.connected_components().len(), 2);
    }

    #[test]
    fn empty_and_singleton_graphs_are_trivially_connected() {
        let cg = ConflictGraph::from_violations(0, &ViolationSet::default());
        assert!(cg.is_connected());
        assert!(!cg.is_non_trivially_connected());
        let cg = ConflictGraph::from_violations(1, &ViolationSet::default());
        assert!(cg.is_connected());
        assert!(!cg.is_non_trivially_connected());
    }
}
