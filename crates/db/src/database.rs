//! Databases: dictionary-encoded columnar fact storage with dense ids.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::{
    DbError, Dictionary, Fact, FactId, FactSet, RelationId, RelationIndex, Schema, Sym, Value,
};

/// One fact-level change in a database's mutation log.
///
/// [`Database::changes_since`] exposes the suffix of the log past a
/// version cursor, which is what delta consumers ([`crate::ConflictIndex`]
/// refresh, lineage refresh in `ucqa-query`) replay instead of rescanning
/// the database.  Deletions carry the relation and symbol row because the
/// columnar storage physically removes the row — a late reader could not
/// recover it from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactChange {
    /// A genuinely new fact was inserted under this id.
    Inserted(FactId),
    /// The fact with this id was deleted.
    Deleted {
        /// The id the fact held (never reused).
        id: FactId,
        /// The relation the fact belonged to.
        relation: RelationId,
        /// The fact's symbol row at deletion time.
        row: Box<[Sym]>,
    },
}

impl FactChange {
    /// The fact id this change concerns.
    pub fn fact(&self) -> FactId {
        match self {
            FactChange::Inserted(id) => *id,
            FactChange::Deleted { id, .. } => *id,
        }
    }
}

/// A database `D` over a schema **S**: a finite set of facts.
///
/// Facts are deduplicated on insertion and receive dense [`FactId`]s in
/// insertion order.  Storage is *columnar and dictionary-encoded*: every
/// constant is interned into a shared [`Dictionary`] and each relation
/// stores its facts as per-position [`Sym`] columns, so the hot paths
/// (violation detection, join probes) compare dense `u32` symbols instead
/// of hashing [`Value`]s.  The [`Value`]-facing API ([`Database::fact`],
/// [`Database::insert`], …) is a thin encode/decode shell over the
/// columns.
///
/// The schema and dictionary are shared behind [`Arc`]s so that derived
/// databases (e.g. the reduction gadgets) and concurrent samplers can
/// reuse them cheaply; the dictionary is cloned copy-on-write only if a
/// snapshot handle is still held when new constants arrive.
pub struct Database {
    schema: Arc<Schema>,
    /// The shared value interner; append-only, copy-on-write under
    /// [`Arc::make_mut`].
    dict: Arc<Dictionary>,
    /// Per relation, per position, per row: the interned symbol.  Rows of
    /// relation `r` align with `by_relation[r]` (insertion order within
    /// the relation).
    columns: Vec<Vec<Vec<Sym>>>,
    /// FactId → owning relation.
    fact_rel: Vec<RelationId>,
    /// FactId → row within its relation's columns.
    fact_row: Vec<u32>,
    by_relation: Vec<Vec<FactId>>,
    /// Dedup map from encoded fact to id.
    by_key: HashMap<(RelationId, Box<[Sym]>), FactId>,
    /// FactId → liveness tombstone.  Ids are never reused: a deleted fact
    /// keeps its id forever, so `FactSet`s and changelogs stay valid
    /// across versions.
    live: Vec<bool>,
    /// Number of live facts (`live` entries that are `true`).
    live_count: usize,
    /// The fact-level mutation log; `version()` is its length.
    log: Vec<FactChange>,
    /// Lazily built `(position, symbol) → fact ids` index backing the
    /// plan-based query evaluator; once built it is *maintained* under
    /// mutations by fact-level delta application instead of being
    /// invalidated and rebuilt.
    value_index: OnceLock<Arc<RelationIndex>>,
    /// Number of times the relation index has been (re)built, for
    /// observing cache behaviour under bulk loads.
    index_builds: AtomicU64,
    /// Number of fact-level deltas applied to the cached relation index
    /// (diagnostics twin of `index_builds`).
    index_delta_applies: u64,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        let value_index = OnceLock::new();
        if let Some(index) = self.value_index.get() {
            // An already-built index describes the same facts; share it.
            let _ = value_index.set(Arc::clone(index));
        }
        Database {
            schema: Arc::clone(&self.schema),
            dict: Arc::clone(&self.dict),
            columns: self.columns.clone(),
            fact_rel: self.fact_rel.clone(),
            fact_row: self.fact_row.clone(),
            by_relation: self.by_relation.clone(),
            by_key: self.by_key.clone(),
            live: self.live.clone(),
            live_count: self.live_count,
            log: self.log.clone(),
            value_index,
            index_builds: AtomicU64::new(self.index_builds.load(Ordering::Relaxed)),
            index_delta_applies: self.index_delta_applies,
        }
    }
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Database::with_dictionary(schema, Arc::new(Dictionary::new()))
    }

    /// Creates an empty database taking ownership of `schema`.
    pub fn with_schema(schema: Schema) -> Self {
        Database::new(Arc::new(schema))
    }

    /// Creates an empty database over `schema` that interns into (a
    /// copy-on-write handle of) an existing dictionary.
    ///
    /// Pre-seeding the dictionary lets several databases agree on symbol
    /// assignments, and lets tests exercise symbol-order independence.
    pub fn with_dictionary(schema: Arc<Schema>, dict: Arc<Dictionary>) -> Self {
        let relations = schema.relation_count();
        let columns = (0..relations)
            .map(|r| vec![Vec::new(); schema.arity(RelationId(r as u32))])
            .collect();
        Database {
            schema,
            dict,
            columns,
            fact_rel: Vec::new(),
            fact_row: Vec::new(),
            by_relation: vec![Vec::new(); relations],
            by_key: HashMap::new(),
            live: Vec::new(),
            live_count: 0,
            log: Vec::new(),
            value_index: OnceLock::new(),
            index_builds: AtomicU64::new(0),
            index_delta_applies: 0,
        }
    }

    /// The schema of this database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The dictionary this database interns its constants into.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// A shared handle to the dictionary, for decoding symbols on other
    /// threads.  Later inserts of *new* constants copy-on-write the
    /// database's dictionary, leaving the returned snapshot untouched.
    pub fn share_dictionary(&self) -> Arc<Dictionary> {
        Arc::clone(&self.dict)
    }

    /// Validates `fact` against the schema (relation id range and arity)
    /// without interning or mutating anything.
    fn validate_fact(&self, fact: &Fact) -> Result<(), DbError> {
        if fact.relation().index() >= self.schema.relation_count() {
            return Err(DbError::ForeignRelationId {
                index: fact.relation().index(),
                relations: self.schema.relation_count(),
            });
        }
        let arity = self.schema.arity(fact.relation());
        if fact.arity() != arity {
            return Err(DbError::ArityMismatch {
                relation: self.schema.relation_name(fact.relation()).to_string(),
                expected: arity,
                actual: fact.arity(),
            });
        }
        Ok(())
    }

    /// Appends an encoded (validated, deduplicated) row, returning the new
    /// fact's id.  Bumps the version and logs the insertion; does **not**
    /// touch the cached index (the caller patches or skips it).
    fn push_row(&mut self, relation: RelationId, row: Box<[Sym]>) -> FactId {
        let id = FactId::new(self.fact_rel.len());
        let columns = &mut self.columns[relation.index()];
        let row_index = self.by_relation[relation.index()].len() as u32;
        for (column, &sym) in columns.iter_mut().zip(row.iter()) {
            column.push(sym);
        }
        self.by_relation[relation.index()].push(id);
        self.fact_rel.push(relation);
        self.fact_row.push(row_index);
        self.by_key.insert((relation, row), id);
        self.live.push(true);
        self.live_count += 1;
        self.log.push(FactChange::Inserted(id));
        id
    }

    /// Inserts a fact, checking its relation id and arity against the
    /// schema.
    ///
    /// Returns the fact's id (existing id if the fact was already present).
    /// A fact whose [`RelationId`] was minted by a different (larger)
    /// schema is rejected with [`DbError::ForeignRelationId`] instead of
    /// corrupting the per-relation index.  A rejected fact interns
    /// nothing.  A genuinely new fact is *delta-applied* to the cached
    /// [`RelationIndex`] (if one has been built) instead of invalidating
    /// it.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, DbError> {
        let mut ids = self.extend(std::iter::once(fact))?;
        match ids.pop() {
            Some(id) => Ok(id),
            // `extend` returns exactly one id per input fact.
            None => unreachable!("extend of one fact yields one id"),
        }
    }

    /// Bulk insert with **validate-then-commit** semantics: every fact of
    /// the batch is validated and encoded before any row is pushed, so a
    /// failed bulk load leaves the database — facts, dictionary, cached
    /// index, version — exactly as it was.
    ///
    /// Constants are interned only when the batch commits, and only the
    /// constants of genuinely new facts reach the dictionary: rejected and
    /// duplicate facts cannot grow the symbol table (and therefore cannot
    /// skew `distinct_count`-based planning statistics).  On commit the
    /// cached [`RelationIndex`] (if built) absorbs the batch by fact-level
    /// delta application; it is never invalidated.  Returns the id of each
    /// input fact in order.
    pub fn extend(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Vec<FactId>, DbError> {
        /// Where each input fact of a staged batch ends up.
        enum Slot {
            /// Already present before the batch.
            Existing(FactId),
            /// The `n`-th genuinely new row of the batch.
            Pending(usize),
        }

        // --- Stage: validate and encode everything, mutate nothing. ---
        // New constants are assigned provisional symbols past the current
        // dictionary bound; they become real only if the whole batch
        // validates.
        let dict = Arc::clone(&self.dict);
        let mut staged_values: Vec<Value> = Vec::new();
        let mut staged_index: HashMap<Value, Sym> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::new();
        let mut pending: Vec<(RelationId, Box<[Sym]>)> = Vec::new();
        let mut pending_keys: HashMap<(RelationId, Box<[Sym]>), usize> = HashMap::new();
        for fact in facts {
            self.validate_fact(&fact)?;
            let row: Box<[Sym]> = fact
                .values()
                .iter()
                .map(|value| {
                    if let Some(sym) = dict.lookup(value) {
                        return Ok(sym);
                    }
                    if let Some(&sym) = staged_index.get(value) {
                        return Ok(sym);
                    }
                    let index = dict.len() + staged_values.len();
                    let sym =
                        Sym::try_new(index).ok_or(DbError::DictionaryFull { symbols: index })?;
                    staged_values.push(value.clone());
                    staged_index.insert(value.clone(), sym);
                    Ok(sym)
                })
                .collect::<Result<_, DbError>>()?;
            let key = (fact.relation(), row);
            if let Some(&id) = self.by_key.get(&key) {
                slots.push(Slot::Existing(id));
            } else if let Some(&position) = pending_keys.get(&key) {
                slots.push(Slot::Pending(position));
            } else {
                slots.push(Slot::Pending(pending.len()));
                pending_keys.insert(key.clone(), pending.len());
                pending.push(key);
            }
        }

        // --- Commit: the batch is valid; now mutate. ---
        if !staged_values.is_empty() {
            let dict = Arc::make_mut(&mut self.dict);
            for value in staged_values {
                // The staged symbols were assigned densely past the old
                // bound, so committing in order reproduces them exactly.
                let sym = dict.try_intern(value)?;
                debug_assert!(sym.index() < dict.len());
            }
        }
        let pending_ids: Vec<FactId> = pending
            .iter()
            .cloned()
            .map(|(relation, row)| self.push_row(relation, row))
            .collect();
        if !pending.is_empty() {
            if let Some(shared) = self.value_index.get_mut() {
                let index = Arc::make_mut(shared);
                index.ensure_sym_bound(self.dict.len());
                for ((relation, row), &id) in pending.iter().zip(&pending_ids) {
                    index.apply_insert(*relation, row, id);
                    self.index_delta_applies += 1;
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Existing(id) => id,
                Slot::Pending(position) => pending_ids[position],
            })
            .collect())
    }

    /// Deletes the fact with the given id, if it is live.
    ///
    /// The id is tombstoned (never reused) and the fact's row is removed
    /// from the symbol columns — later rows of the same relation shift
    /// down, preserving the ascending-id order of
    /// [`Database::facts_of`].  The cached [`RelationIndex`] (if built) is
    /// delta-patched, the version is bumped, and the change is logged with
    /// the deleted symbol row so delta consumers can replay it.  Returns
    /// [`DbError::NoSuchFact`] for an out-of-range or already-deleted id.
    pub fn delete(&mut self, id: FactId) -> Result<(), DbError> {
        if !self.is_live(id) {
            return Err(DbError::NoSuchFact {
                index: id.index(),
                universe: self.len(),
            });
        }
        let relation = self.fact_rel[id.index()];
        let row = self.fact_row[id.index()] as usize;
        let columns = &mut self.columns[relation.index()];
        let syms: Box<[Sym]> = columns.iter().map(|column| column[row]).collect();
        for column in columns.iter_mut() {
            column.remove(row);
        }
        self.by_relation[relation.index()].remove(row);
        for index in row..self.by_relation[relation.index()].len() {
            let later = self.by_relation[relation.index()][index];
            self.fact_row[later.index()] -= 1;
        }
        let key = (relation, syms);
        self.by_key.remove(&key);
        let (relation, syms) = key;
        self.live[id.index()] = false;
        self.live_count -= 1;
        if let Some(shared) = self.value_index.get_mut() {
            Arc::make_mut(shared).apply_delete(relation, &syms, id);
            self.index_delta_applies += 1;
        }
        self.log.push(FactChange::Deleted {
            id,
            relation,
            row: syms,
        });
        Ok(())
    }

    /// Deletes `fact` by value, returning the id it held, or `None` if the
    /// fact was not present (which is not an error — retraction is
    /// idempotent).
    pub fn retract(&mut self, fact: &Fact) -> Result<Option<FactId>, DbError> {
        match self.fact_id(fact) {
            Some(id) => {
                self.delete(id)?;
                Ok(Some(id))
            }
            None => Ok(None),
        }
    }

    /// Expires the oldest live facts until at most `keep` remain,
    /// returning the expired ids, oldest first.  "Oldest" is insertion
    /// order — fact ids are assigned monotonically and never reused, so
    /// the lowest live ids are the ones that slid out of a count-bounded
    /// window.  Each expiry is an ordinary [`Database::delete`]: it
    /// tombstones the id, patches the cached indexes, and logs a
    /// [`FactChange::Deleted`] for delta consumers to replay.
    pub fn expire_oldest(&mut self, keep: usize) -> Result<Vec<FactId>, DbError> {
        let excess = self.live_count.saturating_sub(keep);
        let victims: Vec<FactId> = self.fact_ids().take(excess).collect();
        for &id in &victims {
            self.delete(id)?;
        }
        Ok(victims)
    }

    /// The database version: the number of fact-level changes (insertions
    /// and deletions) ever applied.  Bumped monotonically; duplicates and
    /// rejected facts do not bump it.
    pub fn version(&self) -> u64 {
        self.log.len() as u64
    }

    /// The suffix of the mutation log past a version cursor: everything
    /// that changed since `version` (as previously returned by
    /// [`Database::version`]), oldest first.
    pub fn changes_since(&self, version: u64) -> &[FactChange] {
        let from = usize::try_from(version).unwrap_or(self.log.len());
        &self.log[from.min(self.log.len())..]
    }

    /// Returns `true` iff `id` names a live (inserted and not deleted)
    /// fact.
    #[inline]
    pub fn is_live(&self, id: FactId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// The number of live facts (`len()` minus tombstones).
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Convenience: insert a fact given by relation name and values.
    pub fn insert_values(
        &mut self,
        relation: &str,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<FactId, DbError> {
        let rel = self.schema.relation_id(relation)?;
        self.insert(Fact::new(rel, values.into_iter().collect()))
    }

    /// The id-space size: every [`FactId`] ever assigned is below this
    /// bound.  Equal to the number of live facts until the first deletion
    /// (ids are never reused, so deletions leave the id space unchanged);
    /// use [`Database::live_count`] for the live cardinality `|D|`.
    pub fn len(&self) -> usize {
        self.fact_rel.len()
    }

    /// Returns `true` iff the database has no live facts.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Decodes the fact with the given id.
    ///
    /// Facts are stored columnar, so this materializes an owned [`Fact`]
    /// by decoding one symbol per position; hot paths should work on
    /// [`Database::sym`] / [`Database::columns_of`] instead.
    ///
    /// # Panics
    /// Panics if `id` does not name a live fact.
    pub fn fact(&self, id: FactId) -> Fact {
        assert!(
            self.is_live(id),
            "fact id {id} does not name a live fact (deleted or out of range)"
        );
        let relation = self.fact_rel[id.index()];
        let row = self.fact_row[id.index()] as usize;
        let values = self.columns[relation.index()]
            .iter()
            .map(|column| self.dict.decode(column[row]).clone())
            .collect();
        Fact::new(relation, values)
    }

    /// The owning relation of a fact.
    #[inline]
    pub fn relation_of(&self, id: FactId) -> RelationId {
        self.fact_rel[id.index()]
    }

    /// The row of a fact within its relation's columns (aligned with
    /// [`Database::facts_of`]).
    #[inline]
    pub fn row_of(&self, id: FactId) -> usize {
        self.fact_row[id.index()] as usize
    }

    /// The symbol of a fact at `position`.
    #[inline]
    pub fn sym(&self, id: FactId, position: usize) -> Sym {
        let relation = self.fact_rel[id.index()];
        self.columns[relation.index()][position][self.fact_row[id.index()] as usize]
    }

    /// The per-position symbol columns of `relation` (one `Vec<Sym>` per
    /// position, rows aligned with [`Database::facts_of`]).
    #[inline]
    pub fn columns_of(&self, relation: RelationId) -> &[Vec<Sym>] {
        &self.columns[relation.index()]
    }

    /// One symbol column of `relation`.
    #[inline]
    pub fn column(&self, relation: RelationId, position: usize) -> &[Sym] {
        &self.columns[relation.index()][position]
    }

    /// Looks up the id of a fact, if present.
    ///
    /// A fact containing a constant the dictionary has never seen is
    /// provably absent, so the lookup never interns.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        let row: Option<Box<[Sym]>> = fact.values().iter().map(|v| self.dict.lookup(v)).collect();
        self.by_key.get(&(fact.relation(), row?)).copied()
    }

    /// Returns `true` iff the database contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.fact_id(fact).is_some()
    }

    /// Iterates over all live fact ids in insertion order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.len())
            .map(FactId::new)
            .filter(move |&id| self.is_live(id))
    }

    /// Iterates over `(id, fact)` pairs, decoding each fact.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, Fact)> + '_ {
        self.fact_ids().map(|id| (id, self.fact(id)))
    }

    /// The ids of the facts over `relation`.
    pub fn facts_of(&self, relation: RelationId) -> &[FactId] {
        &self.by_relation[relation.index()]
    }

    /// The `(position, symbol) → fact ids` index of this database, built
    /// on first use and thereafter *maintained*: inserts and deletes patch
    /// the cached index with fact-level deltas instead of invalidating it
    /// (see [`Database::index_delta_applies`]).
    ///
    /// This is the access-path backbone of the plan-based query evaluator
    /// in `ucqa-query`: a join step whose term at some position is bound
    /// looks up its posting list here instead of scanning the relation.
    pub fn relation_index(&self) -> &RelationIndex {
        self.value_index.get_or_init(|| {
            self.index_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(RelationIndex::build(self))
        })
    }

    /// A shared handle to the relation index (building it if necessary),
    /// for sharing across threads like [`crate::ConflictIndex`].
    pub fn share_relation_index(&self) -> Arc<RelationIndex> {
        self.relation_index();
        Arc::clone(self.value_index.get().expect("just initialised"))
    }

    /// How many times the relation index has been (re)built over this
    /// database's lifetime (diagnostics for bulk-load cache behaviour; see
    /// [`Database::extend`]).
    pub fn index_builds(&self) -> u64 {
        self.index_builds.load(Ordering::Relaxed)
    }

    /// How many fact-level deltas have been applied to the cached relation
    /// index (zero while no index is cached — an unbuilt index has nothing
    /// to maintain).
    pub fn index_delta_applies(&self) -> u64 {
        self.index_delta_applies
    }

    /// The live fact set `D` as a [`FactSet`] over this database's id
    /// space (deleted ids are absent).
    pub fn all_facts(&self) -> FactSet {
        let mut set = FactSet::full(self.len());
        if self.live_count != self.len() {
            for (index, &alive) in self.live.iter().enumerate() {
                if !alive {
                    set.remove(FactId::new(index));
                }
            }
        }
        set
    }

    /// The active domain `dom(D)`: the set of constants occurring in `D`.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        // The dictionary may hold constants interned by a sibling database
        // sharing it, so walk the columns, not the dictionary.
        self.columns
            .iter()
            .flat_map(|relation| relation.iter())
            .flat_map(|column| column.iter())
            .map(|&sym| self.dict.decode(sym).clone())
            .collect()
    }

    /// Approximate resident bytes of the fact storage (columns, id maps,
    /// dedup map, and the dictionary), for per-fact memory reporting.
    /// Excludes the lazily built [`RelationIndex`]
    /// (see [`RelationIndex::approx_bytes`]).
    pub fn approx_fact_bytes(&self) -> usize {
        let sym = std::mem::size_of::<Sym>();
        let column_bytes: usize = self
            .columns
            .iter()
            .flat_map(|relation| relation.iter())
            .map(|column| column.len() * sym)
            .sum();
        let per_fact = std::mem::size_of::<RelationId>() // fact_rel
            + std::mem::size_of::<u32>() // fact_row
            + std::mem::size_of::<FactId>(); // by_relation entry
                                             // by_key: key tuple + boxed row + value, with ~1.8x hash slack.
        let key_bytes: usize = self
            .by_key
            .keys()
            .map(|(_, row)| {
                (std::mem::size_of::<(RelationId, Box<[Sym]>)>()
                    + std::mem::size_of::<FactId>()
                    + row.len() * sym)
                    * 9
                    / 5
            })
            .sum();
        column_bytes + self.len() * per_fact + key_bytes + self.dict.approx_bytes()
    }

    /// Materializes the sub-database induced by `subset` as a new
    /// [`Database`] (fresh ids).  Mostly useful for tests and displays; the
    /// algorithms operate on [`FactSet`]s directly.
    pub fn restrict(&self, subset: &FactSet) -> Database {
        let mut db = Database::with_dictionary(self.schema_arc(), self.share_dictionary());
        db.extend(subset.iter().map(|id| self.fact(id)))
            .expect("restricting an existing fact cannot fail arity checks");
        db
    }

    /// Renders `subset` as a set of facts with relation names resolved.
    pub fn render_subset(&self, subset: &FactSet) -> String {
        let mut parts: Vec<String> = subset
            .iter()
            .map(|id| self.fact(id).display(&self.schema).to_string())
            .collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.live_count())?;
        for (id, fact) in self.iter() {
            writeln!(f, "  {id}: {}", fact.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_r2() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema
    }

    #[test]
    fn expire_oldest_slides_out_the_lowest_live_ids() {
        let mut db = Database::with_schema(schema_r2());
        let ids: Vec<FactId> = (0..6)
            .map(|i| {
                db.insert_values("R", [Value::int(i), Value::int(i)])
                    .unwrap()
            })
            .collect();
        // Tombstone one early id first: expiry must skip it and count
        // only live facts against the window.
        db.delete(ids[1]).unwrap();
        let version = db.version();
        let expired = db.expire_oldest(3).unwrap();
        assert_eq!(expired, vec![ids[0], ids[2]], "oldest live facts first");
        assert_eq!(db.live_count(), 3);
        assert_eq!(db.fact_ids().collect::<Vec<_>>(), &ids[3..]);
        // Each expiry is an ordinary logged deletion for delta replay.
        assert_eq!(db.changes_since(version).len(), 2);
        // Already within the window: a no-op.
        assert_eq!(db.expire_oldest(3).unwrap(), Vec::<FactId>::new());
        assert_eq!(db.version(), version + 2);
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let f1 = db
            .insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_ne!(f0, f1);
        assert_eq!(db.fact(f0).values()[1], Value::int(2));
        let rel = db.schema().relation_id("R").unwrap();
        assert_eq!(db.facts_of(rel), &[f0, f1]);
    }

    #[test]
    fn duplicate_insertion_returns_same_id() {
        let mut db = Database::with_schema(schema_r2());
        let a = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let b = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("S", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::UnknownRelation { .. }));
    }

    #[test]
    fn foreign_relation_id_rejected() {
        // Mint a RelationId against a two-relation schema, then insert the
        // fact into a database whose schema declares only one.
        let mut big = Schema::new();
        big.add_relation("R", &["A", "B"]).unwrap();
        big.add_relation("S", &["A", "B"]).unwrap();
        let foreign = big.relation_id("S").unwrap();
        let mut db = Database::with_schema(schema_r2());
        let err = db
            .insert(Fact::new(foreign, vec![Value::int(1), Value::int(2)]))
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::ForeignRelationId {
                index: 1,
                relations: 1
            }
        ));
        assert!(err.to_string().contains("different schema"));
        assert!(db.is_empty());
    }

    #[test]
    fn rejected_fact_does_not_pollute_the_dictionary() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert!(db.dictionary().is_empty());
    }

    #[test]
    fn active_domain() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::str("a")])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::str("b")])
            .unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::int(1)));
        assert!(dom.contains(&Value::str("b")));
    }

    #[test]
    fn restrict_and_render() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        let subset = FactSet::from_iter(db.len(), [f0]);
        let restricted = db.restrict(&subset);
        assert_eq!(restricted.len(), 1);
        assert_eq!(db.render_subset(&subset), "{R(1, 2)}");
    }

    #[test]
    fn columns_align_with_relation_rows() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema.add_relation("S", &["A"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("S", [Value::str("s0")]).unwrap();
        let f1 = db
            .insert_values("R", [Value::str("a"), Value::str("b")])
            .unwrap();
        let f2 = db
            .insert_values("R", [Value::str("a"), Value::str("c")])
            .unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.facts_of(r), &[f1, f2]);
        assert_eq!(db.row_of(f1), 0);
        assert_eq!(db.row_of(f2), 1);
        assert_eq!(db.relation_of(f1), r);
        // Shared first column, distinct second column.
        assert_eq!(db.column(r, 0)[0], db.column(r, 0)[1]);
        assert_ne!(db.column(r, 1)[0], db.column(r, 1)[1]);
        assert_eq!(db.sym(f2, 1), db.column(r, 1)[1]);
    }

    #[test]
    fn fact_id_with_unknown_constant_is_none() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let rel = db.schema().relation_id("R").unwrap();
        let stranger = Fact::new(rel, vec![Value::int(1), Value::str("never-seen")]);
        assert_eq!(db.fact_id(&stranger), None);
        assert!(!db.contains(&stranger));
        // The probe must not have interned the stranger's constant.
        assert_eq!(db.dictionary().lookup(&Value::str("never-seen")), None);
    }

    #[test]
    fn shared_dictionary_snapshot_is_copy_on_write() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let snapshot = db.share_dictionary();
        db.insert_values("R", [Value::int(1), Value::int(99)])
            .unwrap();
        // The snapshot still decodes the old symbols but never saw 99.
        assert_eq!(snapshot.lookup(&Value::int(99)), None);
        assert!(db.dictionary().lookup(&Value::int(99)).is_some());
        assert_eq!(
            snapshot.decode(Sym::new(0)),
            db.dictionary().decode(Sym::new(0))
        );
    }

    #[test]
    fn mutations_maintain_the_cached_index_without_rebuilds() {
        let rel_facts = |n: usize| {
            (0..n).map(move |i| {
                Fact::new(
                    RelationId(0),
                    vec![Value::int(i as i64), Value::int((i % 3) as i64)],
                )
            })
        };
        // Interleaved insert + read builds the index exactly once and then
        // patches it with per-fact deltas...
        let mut slow = Database::with_schema(schema_r2());
        for fact in rel_facts(10) {
            slow.insert(fact).unwrap();
            slow.relation_index();
        }
        assert_eq!(slow.index_builds(), 1);
        assert_eq!(slow.index_delta_applies(), 9);
        assert_eq!(
            *slow.relation_index(),
            RelationIndex::build(&slow),
            "delta-maintained index diverged from a fresh rebuild"
        );
        // ...while a bulk extend before the first read needs no patching
        // at all (nothing is cached yet).
        let mut fast = Database::with_schema(schema_r2());
        let ids = fast.extend(rel_facts(10)).unwrap();
        assert_eq!(ids.len(), 10);
        fast.relation_index();
        assert_eq!(fast.index_builds(), 1);
        assert_eq!(fast.index_delta_applies(), 0);
        // Same database either way.
        assert_eq!(slow.len(), fast.len());
        for id in slow.fact_ids() {
            assert_eq!(slow.fact(id), fast.fact(id));
        }
        // An all-duplicate extend leaves the cached index untouched.
        fast.extend(rel_facts(10)).unwrap();
        fast.relation_index();
        assert_eq!(fast.index_builds(), 1);
        assert_eq!(fast.index_delta_applies(), 0);
        // Duplicates report their original ids.
        assert_eq!(fast.extend(rel_facts(3)).unwrap(), ids[..3].to_vec());
    }

    #[test]
    fn extend_rejects_bad_facts() {
        let mut db = Database::with_schema(schema_r2());
        let err = db
            .extend([Fact::new(RelationId(0), vec![Value::int(1)])])
            .unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    /// Regression: `extend` used to push earlier facts of a batch before a
    /// later fact failed validation, returning early *past* the deferred
    /// index invalidation — a mutated database under a stale cached index.
    #[test]
    fn failed_extend_is_atomic_and_keeps_the_cached_index_fresh() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        // Build and cache the index, then attempt a batch whose second
        // fact is invalid.
        db.relation_index();
        let version = db.version();
        let good = Fact::new(RelationId(0), vec![Value::int(7), Value::int(8)]);
        let bad = Fact::new(RelationId(0), vec![Value::int(9)]);
        let err = db.extend([good.clone(), bad]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
        // Atomicity: the good fact did not land, the version did not move.
        assert_eq!(db.len(), 1);
        assert_eq!(db.version(), version);
        assert_eq!(db.fact_id(&good), None);
        assert_eq!(db.dictionary().lookup(&Value::int(7)), None);
        // Cache freshness: the cached index still describes the database.
        assert_eq!(db.index_builds(), 1);
        assert_eq!(*db.relation_index(), RelationIndex::build(&db));
    }

    /// Regression: rejected facts (and failed batches) must not intern
    /// constants — `share_dictionary` snapshots stay bit-identical, down
    /// to the very same allocation (copy-on-write is never triggered).
    #[test]
    fn rejected_batch_leaves_dictionary_snapshots_bit_identical() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let snapshot = db.share_dictionary();
        let fresh = Fact::new(RelationId(0), vec![Value::str("fresh"), Value::int(3)]);
        let bad = Fact::new(RelationId(0), vec![Value::int(9)]);
        db.extend([fresh, bad]).unwrap_err();
        // No constant of the failed batch reached the dictionary; the
        // database still shares the snapshot's allocation.
        assert_eq!(db.dictionary().lookup(&Value::str("fresh")), None);
        assert_eq!(db.dictionary().len(), snapshot.len());
        assert!(Arc::ptr_eq(&snapshot, &db.share_dictionary()));
        // A rejected single insert behaves the same.
        db.insert(Fact::new(RelationId(0), vec![Value::str("also-fresh")]))
            .unwrap_err();
        assert!(Arc::ptr_eq(&snapshot, &db.share_dictionary()));
    }

    #[test]
    fn delete_tombstones_ids_and_compacts_columns() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let f1 = db
            .insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        let f2 = db
            .insert_values("R", [Value::int(5), Value::int(6)])
            .unwrap();
        let rel = db.schema().relation_id("R").unwrap();
        db.delete(f1).unwrap();
        // Ids are never reused; the id space keeps its size.
        assert_eq!(db.len(), 3);
        assert_eq!(db.live_count(), 2);
        assert!(!db.is_live(f1));
        // Columns and row mappings stay aligned after the shift.
        assert_eq!(db.facts_of(rel), &[f0, f2]);
        assert_eq!(db.row_of(f0), 0);
        assert_eq!(db.row_of(f2), 1);
        assert_eq!(db.sym(f2, 0), db.column(rel, 0)[1]);
        assert_eq!(db.fact(f2).values()[0], Value::int(5));
        // The deleted fact is gone by value and from the live set.
        let gone = Fact::new(rel, vec![Value::int(3), Value::int(4)]);
        assert_eq!(db.fact_id(&gone), None);
        assert!(!db.all_facts().contains(f1));
        assert_eq!(db.fact_ids().collect::<Vec<_>>(), vec![f0, f2]);
        // Deleting twice (or out of range) is a typed error.
        assert!(matches!(
            db.delete(f1),
            Err(DbError::NoSuchFact { index: 1, .. })
        ));
        assert!(matches!(
            db.delete(FactId::new(17)),
            Err(DbError::NoSuchFact { .. })
        ));
        // Re-inserting the same values mints a fresh id.
        let f3 = db
            .insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        assert_ne!(f3, f1);
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn version_and_changelog_track_fact_level_changes() {
        let mut db = Database::with_schema(schema_r2());
        assert_eq!(db.version(), 0);
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        // Duplicates and rejected facts do not bump the version.
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert_eq!(db.version(), 1);
        let cursor = db.version();
        let f1 = db
            .insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        db.delete(f0).unwrap();
        assert_eq!(db.version(), 3);
        let changes = db.changes_since(cursor);
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0], FactChange::Inserted(f1));
        match &changes[1] {
            FactChange::Deleted { id, relation, row } => {
                assert_eq!(*id, f0);
                assert_eq!(relation.index(), 0);
                assert_eq!(row.len(), 2);
            }
            other => panic!("expected a deletion, got {other:?}"),
        }
        assert!(db.changes_since(db.version()).is_empty());
        assert!(db.changes_since(u64::MAX).is_empty());
        // `retract` resolves by value and tolerates absent facts.
        let fact1 = db.fact(f1);
        assert_eq!(db.retract(&fact1).unwrap(), Some(f1));
        let absent = Fact::new(RelationId(0), vec![Value::int(99), Value::int(99)]);
        assert_eq!(db.retract(&absent).unwrap(), None);
    }
}
