//! Databases: dictionary-encoded columnar fact storage with dense ids.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::{
    DbError, Dictionary, Fact, FactId, FactSet, RelationId, RelationIndex, Schema, Sym, Value,
};

/// A database `D` over a schema **S**: a finite set of facts.
///
/// Facts are deduplicated on insertion and receive dense [`FactId`]s in
/// insertion order.  Storage is *columnar and dictionary-encoded*: every
/// constant is interned into a shared [`Dictionary`] and each relation
/// stores its facts as per-position [`Sym`] columns, so the hot paths
/// (violation detection, join probes) compare dense `u32` symbols instead
/// of hashing [`Value`]s.  The [`Value`]-facing API ([`Database::fact`],
/// [`Database::insert`], …) is a thin encode/decode shell over the
/// columns.
///
/// The schema and dictionary are shared behind [`Arc`]s so that derived
/// databases (e.g. the reduction gadgets) and concurrent samplers can
/// reuse them cheaply; the dictionary is cloned copy-on-write only if a
/// snapshot handle is still held when new constants arrive.
pub struct Database {
    schema: Arc<Schema>,
    /// The shared value interner; append-only, copy-on-write under
    /// [`Arc::make_mut`].
    dict: Arc<Dictionary>,
    /// Per relation, per position, per row: the interned symbol.  Rows of
    /// relation `r` align with `by_relation[r]` (insertion order within
    /// the relation).
    columns: Vec<Vec<Vec<Sym>>>,
    /// FactId → owning relation.
    fact_rel: Vec<RelationId>,
    /// FactId → row within its relation's columns.
    fact_row: Vec<u32>,
    by_relation: Vec<Vec<FactId>>,
    /// Dedup map from encoded fact to id.
    by_key: HashMap<(RelationId, Box<[Sym]>), FactId>,
    /// Lazily built `(position, symbol) → fact ids` index backing the
    /// plan-based query evaluator; invalidated whenever a new fact is
    /// inserted.
    value_index: OnceLock<Arc<RelationIndex>>,
    /// Number of times the relation index has been (re)built, for
    /// observing cache behaviour under bulk loads.
    index_builds: AtomicU64,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        let value_index = OnceLock::new();
        if let Some(index) = self.value_index.get() {
            // An already-built index describes the same facts; share it.
            let _ = value_index.set(Arc::clone(index));
        }
        Database {
            schema: Arc::clone(&self.schema),
            dict: Arc::clone(&self.dict),
            columns: self.columns.clone(),
            fact_rel: self.fact_rel.clone(),
            fact_row: self.fact_row.clone(),
            by_relation: self.by_relation.clone(),
            by_key: self.by_key.clone(),
            value_index,
            index_builds: AtomicU64::new(self.index_builds.load(Ordering::Relaxed)),
        }
    }
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Database::with_dictionary(schema, Arc::new(Dictionary::new()))
    }

    /// Creates an empty database taking ownership of `schema`.
    pub fn with_schema(schema: Schema) -> Self {
        Database::new(Arc::new(schema))
    }

    /// Creates an empty database over `schema` that interns into (a
    /// copy-on-write handle of) an existing dictionary.
    ///
    /// Pre-seeding the dictionary lets several databases agree on symbol
    /// assignments, and lets tests exercise symbol-order independence.
    pub fn with_dictionary(schema: Arc<Schema>, dict: Arc<Dictionary>) -> Self {
        let relations = schema.relation_count();
        let columns = (0..relations)
            .map(|r| vec![Vec::new(); schema.arity(RelationId(r as u32))])
            .collect();
        Database {
            schema,
            dict,
            columns,
            fact_rel: Vec::new(),
            fact_row: Vec::new(),
            by_relation: vec![Vec::new(); relations],
            by_key: HashMap::new(),
            value_index: OnceLock::new(),
            index_builds: AtomicU64::new(0),
        }
    }

    /// The schema of this database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The dictionary this database interns its constants into.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// A shared handle to the dictionary, for decoding symbols on other
    /// threads.  Later inserts of *new* constants copy-on-write the
    /// database's dictionary, leaving the returned snapshot untouched.
    pub fn share_dictionary(&self) -> Arc<Dictionary> {
        Arc::clone(&self.dict)
    }

    /// Validates `fact` against the schema and encodes it, returning its
    /// relation and symbol row.  Interns any constants not seen before.
    fn encode_fact(&mut self, fact: &Fact) -> Result<(RelationId, Box<[Sym]>), DbError> {
        if fact.relation().index() >= self.schema.relation_count() {
            return Err(DbError::ForeignRelationId {
                index: fact.relation().index(),
                relations: self.schema.relation_count(),
            });
        }
        let arity = self.schema.arity(fact.relation());
        if fact.arity() != arity {
            return Err(DbError::ArityMismatch {
                relation: self.schema.relation_name(fact.relation()).to_string(),
                expected: arity,
                actual: fact.arity(),
            });
        }
        let dict = Arc::make_mut(&mut self.dict);
        let row: Box<[Sym]> = fact
            .values()
            .iter()
            .map(|v| dict.intern(v.clone()))
            .collect();
        Ok((fact.relation(), row))
    }

    /// Appends an encoded (validated, deduplicated) row, returning the new
    /// fact's id.  Does **not** invalidate the cached index.
    fn push_row(&mut self, relation: RelationId, row: Box<[Sym]>) -> FactId {
        let id = FactId::new(self.fact_rel.len());
        let columns = &mut self.columns[relation.index()];
        let row_index = self.by_relation[relation.index()].len() as u32;
        for (column, &sym) in columns.iter_mut().zip(row.iter()) {
            column.push(sym);
        }
        self.by_relation[relation.index()].push(id);
        self.fact_rel.push(relation);
        self.fact_row.push(row_index);
        self.by_key.insert((relation, row), id);
        id
    }

    /// Inserts a fact, checking its relation id and arity against the
    /// schema.
    ///
    /// Returns the fact's id (existing id if the fact was already present).
    /// A fact whose [`RelationId`] was minted by a different (larger)
    /// schema is rejected with [`DbError::ForeignRelationId`] instead of
    /// corrupting the per-relation index.  A genuinely new fact invalidates
    /// the cached [`RelationIndex`]; prefer [`Database::extend`] for bulk
    /// loads interleaved with reads.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, DbError> {
        let (relation, row) = self.encode_fact(&fact)?;
        if let Some(&id) = self.by_key.get(&(relation, row.clone())) {
            return Ok(id);
        }
        // A genuinely new fact invalidates the cached value index.
        self.value_index = OnceLock::new();
        Ok(self.push_row(relation, row))
    }

    /// Bulk insert: inserts every fact, invalidating the cached
    /// [`RelationIndex`] **once** instead of per fact.
    ///
    /// [`Database::insert`] drops the index on every genuinely new fact, so
    /// a bulk load interleaved with reads rebuilds it from scratch each
    /// round — accidentally quadratic.  `extend` defers the invalidation
    /// to a single drop at the end (and skips it entirely if every fact
    /// was a duplicate).  Returns the id of each input fact in order.
    pub fn extend(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Vec<FactId>, DbError> {
        let mut ids = Vec::new();
        let mut inserted_any = false;
        for fact in facts {
            let (relation, row) = self.encode_fact(&fact)?;
            if let Some(&id) = self.by_key.get(&(relation, row.clone())) {
                ids.push(id);
                continue;
            }
            inserted_any = true;
            ids.push(self.push_row(relation, row));
        }
        if inserted_any {
            self.value_index = OnceLock::new();
        }
        Ok(ids)
    }

    /// Convenience: insert a fact given by relation name and values.
    pub fn insert_values(
        &mut self,
        relation: &str,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<FactId, DbError> {
        let rel = self.schema.relation_id(relation)?;
        self.insert(Fact::new(rel, values.into_iter().collect()))
    }

    /// Number of facts (`|D|`).
    pub fn len(&self) -> usize {
        self.fact_rel.len()
    }

    /// Returns `true` iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_rel.is_empty()
    }

    /// Decodes the fact with the given id.
    ///
    /// Facts are stored columnar, so this materializes an owned [`Fact`]
    /// by decoding one symbol per position; hot paths should work on
    /// [`Database::sym`] / [`Database::columns_of`] instead.
    pub fn fact(&self, id: FactId) -> Fact {
        let relation = self.fact_rel[id.index()];
        let row = self.fact_row[id.index()] as usize;
        let values = self.columns[relation.index()]
            .iter()
            .map(|column| self.dict.decode(column[row]).clone())
            .collect();
        Fact::new(relation, values)
    }

    /// The owning relation of a fact.
    #[inline]
    pub fn relation_of(&self, id: FactId) -> RelationId {
        self.fact_rel[id.index()]
    }

    /// The row of a fact within its relation's columns (aligned with
    /// [`Database::facts_of`]).
    #[inline]
    pub fn row_of(&self, id: FactId) -> usize {
        self.fact_row[id.index()] as usize
    }

    /// The symbol of a fact at `position`.
    #[inline]
    pub fn sym(&self, id: FactId, position: usize) -> Sym {
        let relation = self.fact_rel[id.index()];
        self.columns[relation.index()][position][self.fact_row[id.index()] as usize]
    }

    /// The per-position symbol columns of `relation` (one `Vec<Sym>` per
    /// position, rows aligned with [`Database::facts_of`]).
    #[inline]
    pub fn columns_of(&self, relation: RelationId) -> &[Vec<Sym>] {
        &self.columns[relation.index()]
    }

    /// One symbol column of `relation`.
    #[inline]
    pub fn column(&self, relation: RelationId, position: usize) -> &[Sym] {
        &self.columns[relation.index()][position]
    }

    /// Looks up the id of a fact, if present.
    ///
    /// A fact containing a constant the dictionary has never seen is
    /// provably absent, so the lookup never interns.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        let row: Option<Box<[Sym]>> = fact.values().iter().map(|v| self.dict.lookup(v)).collect();
        self.by_key.get(&(fact.relation(), row?)).copied()
    }

    /// Returns `true` iff the database contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.fact_id(fact).is_some()
    }

    /// Iterates over all fact ids in insertion order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.len()).map(FactId::new)
    }

    /// Iterates over `(id, fact)` pairs, decoding each fact.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, Fact)> + '_ {
        self.fact_ids().map(|id| (id, self.fact(id)))
    }

    /// The ids of the facts over `relation`.
    pub fn facts_of(&self, relation: RelationId) -> &[FactId] {
        &self.by_relation[relation.index()]
    }

    /// The `(position, symbol) → fact ids` index of this database, built on
    /// first use and cached until the database is mutated.
    ///
    /// This is the access-path backbone of the plan-based query evaluator
    /// in `ucqa-query`: a join step whose term at some position is bound
    /// looks up its posting list here instead of scanning the relation.
    pub fn relation_index(&self) -> &RelationIndex {
        self.value_index.get_or_init(|| {
            self.index_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(RelationIndex::build(self))
        })
    }

    /// A shared handle to the relation index (building it if necessary),
    /// for sharing across threads like [`crate::ConflictIndex`].
    pub fn share_relation_index(&self) -> Arc<RelationIndex> {
        self.relation_index();
        Arc::clone(self.value_index.get().expect("just initialised"))
    }

    /// How many times the relation index has been (re)built over this
    /// database's lifetime (diagnostics for bulk-load cache behaviour; see
    /// [`Database::extend`]).
    pub fn index_builds(&self) -> u64 {
        self.index_builds.load(Ordering::Relaxed)
    }

    /// The full fact set `D` as a [`FactSet`] over this database's universe.
    pub fn all_facts(&self) -> FactSet {
        FactSet::full(self.len())
    }

    /// The active domain `dom(D)`: the set of constants occurring in `D`.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        // The dictionary may hold constants interned by a sibling database
        // sharing it, so walk the columns, not the dictionary.
        self.columns
            .iter()
            .flat_map(|relation| relation.iter())
            .flat_map(|column| column.iter())
            .map(|&sym| self.dict.decode(sym).clone())
            .collect()
    }

    /// Approximate resident bytes of the fact storage (columns, id maps,
    /// dedup map, and the dictionary), for per-fact memory reporting.
    /// Excludes the lazily built [`RelationIndex`]
    /// (see [`RelationIndex::approx_bytes`]).
    pub fn approx_fact_bytes(&self) -> usize {
        let sym = std::mem::size_of::<Sym>();
        let column_bytes: usize = self
            .columns
            .iter()
            .flat_map(|relation| relation.iter())
            .map(|column| column.len() * sym)
            .sum();
        let per_fact = std::mem::size_of::<RelationId>() // fact_rel
            + std::mem::size_of::<u32>() // fact_row
            + std::mem::size_of::<FactId>(); // by_relation entry
                                             // by_key: key tuple + boxed row + value, with ~1.8x hash slack.
        let key_bytes: usize = self
            .by_key
            .keys()
            .map(|(_, row)| {
                (std::mem::size_of::<(RelationId, Box<[Sym]>)>()
                    + std::mem::size_of::<FactId>()
                    + row.len() * sym)
                    * 9
                    / 5
            })
            .sum();
        column_bytes + self.len() * per_fact + key_bytes + self.dict.approx_bytes()
    }

    /// Materializes the sub-database induced by `subset` as a new
    /// [`Database`] (fresh ids).  Mostly useful for tests and displays; the
    /// algorithms operate on [`FactSet`]s directly.
    pub fn restrict(&self, subset: &FactSet) -> Database {
        let mut db = Database::with_dictionary(self.schema_arc(), self.share_dictionary());
        db.extend(subset.iter().map(|id| self.fact(id)))
            .expect("restricting an existing fact cannot fail arity checks");
        db
    }

    /// Renders `subset` as a set of facts with relation names resolved.
    pub fn render_subset(&self, subset: &FactSet) -> String {
        let mut parts: Vec<String> = subset
            .iter()
            .map(|id| self.fact(id).display(&self.schema).to_string())
            .collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.len())?;
        for (id, fact) in self.iter() {
            writeln!(f, "  {id}: {}", fact.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_r2() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let f1 = db
            .insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_ne!(f0, f1);
        assert_eq!(db.fact(f0).values()[1], Value::int(2));
        let rel = db.schema().relation_id("R").unwrap();
        assert_eq!(db.facts_of(rel), &[f0, f1]);
    }

    #[test]
    fn duplicate_insertion_returns_same_id() {
        let mut db = Database::with_schema(schema_r2());
        let a = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let b = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("S", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::UnknownRelation { .. }));
    }

    #[test]
    fn foreign_relation_id_rejected() {
        // Mint a RelationId against a two-relation schema, then insert the
        // fact into a database whose schema declares only one.
        let mut big = Schema::new();
        big.add_relation("R", &["A", "B"]).unwrap();
        big.add_relation("S", &["A", "B"]).unwrap();
        let foreign = big.relation_id("S").unwrap();
        let mut db = Database::with_schema(schema_r2());
        let err = db
            .insert(Fact::new(foreign, vec![Value::int(1), Value::int(2)]))
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::ForeignRelationId {
                index: 1,
                relations: 1
            }
        ));
        assert!(err.to_string().contains("different schema"));
        assert!(db.is_empty());
    }

    #[test]
    fn rejected_fact_does_not_pollute_the_dictionary() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert!(db.dictionary().is_empty());
    }

    #[test]
    fn active_domain() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::str("a")])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::str("b")])
            .unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::int(1)));
        assert!(dom.contains(&Value::str("b")));
    }

    #[test]
    fn restrict_and_render() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        let subset = FactSet::from_iter(db.len(), [f0]);
        let restricted = db.restrict(&subset);
        assert_eq!(restricted.len(), 1);
        assert_eq!(db.render_subset(&subset), "{R(1, 2)}");
    }

    #[test]
    fn columns_align_with_relation_rows() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema.add_relation("S", &["A"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("S", [Value::str("s0")]).unwrap();
        let f1 = db
            .insert_values("R", [Value::str("a"), Value::str("b")])
            .unwrap();
        let f2 = db
            .insert_values("R", [Value::str("a"), Value::str("c")])
            .unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.facts_of(r), &[f1, f2]);
        assert_eq!(db.row_of(f1), 0);
        assert_eq!(db.row_of(f2), 1);
        assert_eq!(db.relation_of(f1), r);
        // Shared first column, distinct second column.
        assert_eq!(db.column(r, 0)[0], db.column(r, 0)[1]);
        assert_ne!(db.column(r, 1)[0], db.column(r, 1)[1]);
        assert_eq!(db.sym(f2, 1), db.column(r, 1)[1]);
    }

    #[test]
    fn fact_id_with_unknown_constant_is_none() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let rel = db.schema().relation_id("R").unwrap();
        let stranger = Fact::new(rel, vec![Value::int(1), Value::str("never-seen")]);
        assert_eq!(db.fact_id(&stranger), None);
        assert!(!db.contains(&stranger));
        // The probe must not have interned the stranger's constant.
        assert_eq!(db.dictionary().lookup(&Value::str("never-seen")), None);
    }

    #[test]
    fn shared_dictionary_snapshot_is_copy_on_write() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let snapshot = db.share_dictionary();
        db.insert_values("R", [Value::int(1), Value::int(99)])
            .unwrap();
        // The snapshot still decodes the old symbols but never saw 99.
        assert_eq!(snapshot.lookup(&Value::int(99)), None);
        assert!(db.dictionary().lookup(&Value::int(99)).is_some());
        assert_eq!(
            snapshot.decode(Sym::new(0)),
            db.dictionary().decode(Sym::new(0))
        );
    }

    #[test]
    fn extend_defers_index_invalidation() {
        let rel_facts = |n: usize| {
            (0..n).map(move |i| {
                Fact::new(
                    RelationId(0),
                    vec![Value::int(i as i64), Value::int((i % 3) as i64)],
                )
            })
        };
        // Interleaved insert + read rebuilds the index every round...
        let mut slow = Database::with_schema(schema_r2());
        for fact in rel_facts(10) {
            slow.insert(fact).unwrap();
            slow.relation_index();
        }
        assert_eq!(slow.index_builds(), 10);
        // ...while extend batches the whole load into one rebuild.
        let mut fast = Database::with_schema(schema_r2());
        let ids = fast.extend(rel_facts(10)).unwrap();
        assert_eq!(ids.len(), 10);
        fast.relation_index();
        assert_eq!(fast.index_builds(), 1);
        // Same database either way.
        assert_eq!(slow.len(), fast.len());
        for id in slow.fact_ids() {
            assert_eq!(slow.fact(id), fast.fact(id));
        }
        // An all-duplicate extend keeps the cached index alive.
        fast.extend(rel_facts(10)).unwrap();
        fast.relation_index();
        assert_eq!(fast.index_builds(), 1);
        // Duplicates report their original ids.
        assert_eq!(fast.extend(rel_facts(3)).unwrap(), ids[..3].to_vec());
    }

    #[test]
    fn extend_rejects_bad_facts() {
        let mut db = Database::with_schema(schema_r2());
        let err = db
            .extend([Fact::new(RelationId(0), vec![Value::int(1)])])
            .unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }
}
