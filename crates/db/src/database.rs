//! Databases: finite sets of facts with dense ids and per-relation indexes.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::{DbError, Fact, FactId, FactSet, RelationId, RelationIndex, Schema, Value};

/// A database `D` over a schema **S**: a finite set of facts.
///
/// Facts are deduplicated on insertion and receive dense [`FactId`]s in
/// insertion order.  The database keeps a per-relation index (used by query
/// evaluation and violation detection) and exposes its facts both by id and
/// by value.  The schema is shared behind an [`Arc`] so that derived
/// databases (e.g. the reduction gadgets) can reuse it cheaply.
pub struct Database {
    schema: Arc<Schema>,
    facts: Vec<Fact>,
    by_fact: HashMap<Fact, FactId>,
    by_relation: Vec<Vec<FactId>>,
    /// Lazily built `(position, value) → fact ids` index backing the
    /// plan-based query evaluator; invalidated whenever a new fact is
    /// inserted.
    value_index: OnceLock<Arc<RelationIndex>>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        let value_index = OnceLock::new();
        if let Some(index) = self.value_index.get() {
            // An already-built index describes the same facts; share it.
            let _ = value_index.set(Arc::clone(index));
        }
        Database {
            schema: Arc::clone(&self.schema),
            facts: self.facts.clone(),
            by_fact: self.by_fact.clone(),
            by_relation: self.by_relation.clone(),
            value_index,
        }
    }
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let relations = schema.relation_count();
        Database {
            schema,
            facts: Vec::new(),
            by_fact: HashMap::new(),
            by_relation: vec![Vec::new(); relations],
            value_index: OnceLock::new(),
        }
    }

    /// Creates an empty database taking ownership of `schema`.
    pub fn with_schema(schema: Schema) -> Self {
        Database::new(Arc::new(schema))
    }

    /// The schema of this database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Inserts a fact, checking its relation id and arity against the
    /// schema.
    ///
    /// Returns the fact's id (existing id if the fact was already present).
    /// A fact whose [`RelationId`] was minted by a
    /// different (larger) schema is rejected with
    /// [`DbError::ForeignRelationId`] instead of corrupting the per-relation
    /// index.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, DbError> {
        if fact.relation().index() >= self.schema.relation_count() {
            return Err(DbError::ForeignRelationId {
                index: fact.relation().index(),
                relations: self.schema.relation_count(),
            });
        }
        let arity = self.schema.arity(fact.relation());
        if fact.arity() != arity {
            return Err(DbError::ArityMismatch {
                relation: self.schema.relation_name(fact.relation()).to_string(),
                expected: arity,
                actual: fact.arity(),
            });
        }
        if let Some(id) = self.by_fact.get(&fact) {
            return Ok(*id);
        }
        // A genuinely new fact invalidates the cached value index.
        self.value_index = OnceLock::new();
        let id = FactId::new(self.facts.len());
        self.by_relation[fact.relation().index()].push(id);
        self.by_fact.insert(fact.clone(), id);
        self.facts.push(fact);
        Ok(id)
    }

    /// Convenience: insert a fact given by relation name and values.
    pub fn insert_values(
        &mut self,
        relation: &str,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<FactId, DbError> {
        let rel = self.schema.relation_id(relation)?;
        self.insert(Fact::new(rel, values.into_iter().collect()))
    }

    /// Number of facts (`|D|`).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.index()]
    }

    /// Looks up the id of a fact, if present.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        self.by_fact.get(fact).copied()
    }

    /// Returns `true` iff the database contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.by_fact.contains_key(fact)
    }

    /// Iterates over all fact ids in insertion order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len()).map(FactId::new)
    }

    /// Iterates over `(id, fact)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> + '_ {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, f)| (FactId::new(i), f))
    }

    /// The ids of the facts over `relation`.
    pub fn facts_of(&self, relation: RelationId) -> &[FactId] {
        &self.by_relation[relation.index()]
    }

    /// The `(position, value) → fact ids` index of this database, built on
    /// first use and cached until the database is mutated.
    ///
    /// This is the access-path backbone of the plan-based query evaluator
    /// in `ucqa-query`: a join step whose term at some position is bound
    /// looks up its posting list here instead of scanning the relation.
    pub fn relation_index(&self) -> &RelationIndex {
        self.value_index
            .get_or_init(|| Arc::new(RelationIndex::build(self)))
    }

    /// A shared handle to the relation index (building it if necessary),
    /// for sharing across threads like [`crate::ConflictIndex`].
    pub fn share_relation_index(&self) -> Arc<RelationIndex> {
        self.relation_index();
        Arc::clone(self.value_index.get().expect("just initialised"))
    }

    /// The full fact set `D` as a [`FactSet`] over this database's universe.
    pub fn all_facts(&self) -> FactSet {
        FactSet::full(self.len())
    }

    /// The active domain `dom(D)`: the set of constants occurring in `D`.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.facts
            .iter()
            .flat_map(|f| f.values().iter().cloned())
            .collect()
    }

    /// Materializes the sub-database induced by `subset` as a new
    /// [`Database`] (fresh ids).  Mostly useful for tests and displays; the
    /// algorithms operate on [`FactSet`]s directly.
    pub fn restrict(&self, subset: &FactSet) -> Database {
        let mut db = Database::new(self.schema_arc());
        for id in subset.iter() {
            db.insert(self.fact(id).clone())
                .expect("restricting an existing fact cannot fail arity checks");
        }
        db
    }

    /// Renders `subset` as a set of facts with relation names resolved.
    pub fn render_subset(&self, subset: &FactSet) -> String {
        let mut parts: Vec<String> = subset
            .iter()
            .map(|id| self.fact(id).display(&self.schema).to_string())
            .collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.facts.len())?;
        for (id, fact) in self.iter() {
            writeln!(f, "  {id}: {}", fact.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_r2() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let f1 = db
            .insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_ne!(f0, f1);
        assert_eq!(db.fact(f0).values()[1], Value::int(2));
        let rel = db.schema().relation_id("R").unwrap();
        assert_eq!(db.facts_of(rel), &[f0, f1]);
    }

    #[test]
    fn duplicate_insertion_returns_same_id() {
        let mut db = Database::with_schema(schema_r2());
        let a = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        let b = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("R", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut db = Database::with_schema(schema_r2());
        let err = db.insert_values("S", [Value::int(1)]).unwrap_err();
        assert!(matches!(err, DbError::UnknownRelation { .. }));
    }

    #[test]
    fn foreign_relation_id_rejected() {
        // Mint a RelationId against a two-relation schema, then insert the
        // fact into a database whose schema declares only one.
        let mut big = Schema::new();
        big.add_relation("R", &["A", "B"]).unwrap();
        big.add_relation("S", &["A", "B"]).unwrap();
        let foreign = big.relation_id("S").unwrap();
        let mut db = Database::with_schema(schema_r2());
        let err = db
            .insert(Fact::new(foreign, vec![Value::int(1), Value::int(2)]))
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::ForeignRelationId {
                index: 1,
                relations: 1
            }
        ));
        assert!(err.to_string().contains("different schema"));
        assert!(db.is_empty());
    }

    #[test]
    fn active_domain() {
        let mut db = Database::with_schema(schema_r2());
        db.insert_values("R", [Value::int(1), Value::str("a")])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::str("b")])
            .unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::int(1)));
        assert!(dom.contains(&Value::str("b")));
    }

    #[test]
    fn restrict_and_render() {
        let mut db = Database::with_schema(schema_r2());
        let f0 = db
            .insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(3), Value::int(4)])
            .unwrap();
        let subset = FactSet::from_iter(db.len(), [f0]);
        let restricted = db.restrict(&subset);
        assert_eq!(restricted.len(), 1);
        assert_eq!(db.render_subset(&subset), "{R(1, 2)}");
    }
}
