//! Dictionary encoding: interning [`Value`]s into dense [`Sym`] symbols.
//!
//! Every constant that enters a [`crate::Database`] is interned exactly
//! once into an append-only [`Dictionary`], which assigns dense `u32`
//! symbols in first-appearance order.  All hot paths — FD violation
//! detection, join probes, grounded-atom keys — then work on `Sym`s, so
//! equality is a single integer compare and group-by is a sort over
//! `u32` keys instead of hashing `Value::Str(Arc<str>)` payloads.
//!
//! The dictionary is *append-only*: a symbol, once assigned, never moves
//! or changes meaning.  Databases share one behind an [`std::sync::Arc`]
//! (like [`crate::ConflictIndex`]), cloned copy-on-write only if a
//! snapshot is still held while new constants arrive.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::HashMap;
use std::fmt;

use crate::{DbError, Value};

/// A dense interned symbol standing for one [`Value`].
///
/// Symbols are assigned in first-appearance order by a [`Dictionary`] and
/// are stable for its lifetime: `Sym` equality is [`Value`] equality (the
/// interning map is injective), but `Sym` *order* is appearance order, not
/// value order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Creates a symbol from a raw index known to be in range (for index
    /// construction over already-interned symbols).
    #[inline]
    pub(crate) fn new(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "symbol index {index} exceeds the u32 symbol space"
        );
        Sym(index as u32)
    }

    /// Checked conversion from a raw index: `None` iff the index does not
    /// fit the `u32` symbol width (the conversion that used to silently
    /// truncate).
    #[inline]
    pub(crate) fn try_new(index: usize) -> Option<Self> {
        u32::try_from(index).ok().map(Sym)
    }

    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An append-only interner `Value → Sym` with stable dense ids.
///
/// Symbols are handed out in first-appearance order; [`Dictionary::decode`]
/// recovers the original value.  Lookups on read paths use the
/// non-mutating [`Dictionary::lookup`]: a constant that was never interned
/// provably occurs in no fact, so probes can early-return empty without
/// growing the dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Symbol → value, in assignment order.
    values: Vec<Value>,
    /// Value → symbol.
    index: HashMap<Value, Sym>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns `value`, returning its symbol (existing symbol if the value
    /// was seen before).
    ///
    /// # Panics
    /// Panics if the `u32` symbol space is exhausted; fallible callers use
    /// [`Dictionary::try_intern`].
    pub fn intern(&mut self, value: Value) -> Sym {
        match self.try_intern(value) {
            Ok(sym) => sym,
            Err(e) => panic!("{e}"),
        }
    }

    /// Interns `value` with a checked symbol conversion: a dictionary that
    /// already holds `u32::MAX + 1` distinct constants returns
    /// [`DbError::DictionaryFull`] instead of silently aliasing the new
    /// value onto an existing symbol.
    pub fn try_intern(&mut self, value: Value) -> Result<Sym, DbError> {
        if let Some(&sym) = self.index.get(&value) {
            return Ok(sym);
        }
        let sym = Sym::try_new(self.values.len()).ok_or(DbError::DictionaryFull {
            symbols: self.values.len(),
        })?;
        self.values.push(value.clone());
        self.index.insert(value, sym);
        Ok(sym)
    }

    /// Looks up the symbol of `value` without interning it.
    ///
    /// `None` means the value occurs nowhere in any database built over
    /// this dictionary, so callers can treat the probe as matching nothing.
    #[inline]
    pub fn lookup(&self, value: &Value) -> Option<Sym> {
        self.index.get(value).copied()
    }

    /// Decodes a symbol back to its value.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this dictionary.
    #[inline]
    pub fn decode(&self, sym: Sym) -> &Value {
        &self.values[sym.index()]
    }

    /// The number of distinct interned values (also the exclusive upper
    /// bound on symbol indexes).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` iff no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(sym, value)` pairs in assignment order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (Sym::new(i), v))
    }

    /// Approximate resident bytes of the dictionary (entries plus string
    /// payloads plus hash-map overhead), for memory reporting.
    pub fn approx_bytes(&self) -> usize {
        let payload: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Int(_) => 0,
                Value::Str(s) => s.len(),
            })
            .sum();
        // One Value in `values`, one Value + Sym entry in `index` (with
        // ~1.8x open-addressing slack), plus the shared str payload once
        // (the Arc<str> buffer is shared between the two copies).
        let value_size = std::mem::size_of::<Value>();
        let entry = value_size + (value_size + std::mem::size_of::<Sym>()) * 2;
        self.values.len() * entry + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut dict = Dictionary::new();
        let a = dict.intern(Value::str("a"));
        let b = dict.intern(Value::int(7));
        let a2 = dict.intern(Value::str("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut dict = Dictionary::new();
        let values = [Value::str("x"), Value::int(-3), Value::str("")];
        let syms: Vec<Sym> = values.iter().cloned().map(|v| dict.intern(v)).collect();
        for (sym, value) in syms.iter().zip(&values) {
            assert_eq!(dict.decode(*sym), value);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut dict = Dictionary::new();
        dict.intern(Value::int(1));
        assert_eq!(dict.lookup(&Value::int(2)), None);
        assert_eq!(dict.len(), 1);
        assert_eq!(dict.lookup(&Value::int(1)), Some(Sym::new(0)));
    }

    #[test]
    fn int_and_str_do_not_collide() {
        let mut dict = Dictionary::new();
        let i = dict.intern(Value::int(1));
        let s = dict.intern(Value::str("1"));
        assert_ne!(i, s);
    }

    #[test]
    fn iter_yields_assignment_order() {
        let mut dict = Dictionary::new();
        dict.intern(Value::str("b"));
        dict.intern(Value::str("a"));
        let collected: Vec<&Value> = dict.iter().map(|(_, v)| v).collect();
        assert_eq!(collected, vec![&Value::str("b"), &Value::str("a")]);
    }

    #[test]
    fn sym_conversion_is_checked_at_the_u32_boundary() {
        assert_eq!(Sym::try_new(0), Some(Sym(0)));
        assert_eq!(Sym::try_new(u32::MAX as usize), Some(Sym(u32::MAX)));
        assert_eq!(Sym::try_new(u32::MAX as usize + 1), None);
        // The error a full dictionary would surface is typed, not a
        // silently aliased symbol.
        let err = DbError::DictionaryFull {
            symbols: u32::MAX as usize + 1,
        };
        assert!(err.to_string().contains("symbol space is exhausted"));
    }

    #[test]
    fn try_intern_matches_intern_on_the_happy_path() {
        let mut dict = Dictionary::new();
        let a = dict.try_intern(Value::str("a")).unwrap();
        assert_eq!(dict.intern(Value::str("a")), a);
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn approx_bytes_counts_string_payloads() {
        let mut small = Dictionary::new();
        small.intern(Value::int(1));
        let mut big = Dictionary::new();
        big.intern(Value::str("a-rather-long-constant-name"));
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
