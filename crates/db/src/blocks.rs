//! Key blocks: groups of facts agreeing on a key's left-hand side.
//!
//! For a set of (primary) keys, the facts of each relation partition into
//! *blocks* of facts sharing the key's left-hand-side values; two facts
//! jointly violate the key iff they are distinct facts of the same block.
//! Blocks are the combinatorial backbone of the primary-key algorithms
//! (Lemmas 5.2, 5.3, 6.2, 6.3, C.1, E.2, E.3, E.9, E.10).

use std::collections::HashMap;

use crate::{Database, DbError, FactId, FdSet, RelationId, Value};

/// A single block: the facts of one relation sharing the key LHS values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    relation: RelationId,
    key_values: Vec<Value>,
    facts: Vec<FactId>,
}

impl Block {
    /// The relation of this block.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The key (LHS) values shared by the facts of this block.
    pub fn key_values(&self) -> &[Value] {
        &self.key_values
    }

    /// The facts of this block, in fact-id order.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of facts in the block.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the block is empty (never produced by
    /// [`BlockPartition::compute`]).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// The partition of a database's facts into key blocks w.r.t. a set of
/// primary keys.
///
/// Facts of relations without a key in `Σ`, and facts whose block would be
/// a singleton, are still represented (as singleton blocks) so that the
/// partition covers the whole database; the algorithms that only care about
/// conflicting blocks use [`BlockPartition::non_singleton_blocks`].
#[derive(Debug, Clone)]
pub struct BlockPartition {
    blocks: Vec<Block>,
    block_of_fact: Vec<usize>,
}

impl BlockPartition {
    /// Computes the block partition of `db` w.r.t. the set `sigma` of
    /// primary keys.
    ///
    /// Returns an error if `sigma` is not a set of primary keys (the block
    /// partition is only well-defined when each relation has at most one
    /// key).
    pub fn compute(db: &Database, sigma: &FdSet) -> Result<Self, DbError> {
        sigma.require_primary_keys(db.schema())?;
        Ok(Self::compute_unchecked(db, sigma))
    }

    /// Computes the block partition without validating that `sigma` is a
    /// set of primary keys.  For each relation, the *first* key of `sigma`
    /// over that relation (if any) determines the blocks; relations without
    /// a key contribute singleton blocks.
    ///
    /// This is the building block used by [`BlockPartition::compute`]; it is
    /// exposed for algorithms (e.g. workload statistics) that want block
    /// structure w.r.t. one chosen key per relation.
    pub fn compute_unchecked(db: &Database, sigma: &FdSet) -> Self {
        // Choose one key per relation (the first declared).
        let mut key_of_relation: HashMap<RelationId, crate::FdId> = HashMap::new();
        for (fd_id, fd) in sigma.iter() {
            key_of_relation.entry(fd.relation()).or_insert(fd_id);
        }

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of_fact = vec![usize::MAX; db.len()];
        let mut index: HashMap<(RelationId, Vec<Value>), usize> = HashMap::new();

        for (fact_id, fact) in db.iter() {
            let relation = fact.relation();
            let key_values: Vec<Value> = match key_of_relation.get(&relation) {
                Some(fd_id) => sigma
                    .fd(*fd_id)
                    .lhs()
                    .iter()
                    .map(|attr| fact.value_at(*attr).clone())
                    .collect(),
                // No key over this relation: every fact is its own block;
                // use the full tuple as the grouping key.
                None => fact.values().to_vec(),
            };
            let block_index = match key_of_relation.get(&relation) {
                Some(_) => *index
                    .entry((relation, key_values.clone()))
                    .or_insert_with(|| {
                        blocks.push(Block {
                            relation,
                            key_values: key_values.clone(),
                            facts: Vec::new(),
                        });
                        blocks.len() - 1
                    }),
                None => {
                    blocks.push(Block {
                        relation,
                        key_values: key_values.clone(),
                        facts: Vec::new(),
                    });
                    blocks.len() - 1
                }
            };
            blocks[block_index].facts.push(fact_id);
            block_of_fact[fact_id.index()] = block_index;
        }

        BlockPartition {
            blocks,
            block_of_fact,
        }
    }

    /// All blocks (including singletons), in first-seen order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The blocks with at least two facts — the ones that can host
    /// violations (called `B₁, …, Bₙ` in the proofs).
    pub fn non_singleton_blocks(&self) -> Vec<&Block> {
        self.blocks.iter().filter(|b| b.len() >= 2).collect()
    }

    /// The index (into [`BlockPartition::blocks`]) of the block containing
    /// `fact`.
    pub fn block_index_of(&self, fact: FactId) -> usize {
        self.block_of_fact[fact.index()]
    }

    /// The block containing `fact`.
    pub fn block_of(&self, fact: FactId) -> &Block {
        &self.blocks[self.block_index_of(fact)]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` iff there are no blocks (empty database).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, FunctionalDependency, Schema};

    /// The database of Figure 2 of the paper: six facts over R/2 with the
    /// primary key R : A1 → A2, forming blocks of sizes 3, 1, 2.
    pub(crate) fn figure2() -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A1", "A2"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (a, b) in [
            ("a1", "b1"),
            ("a1", "b2"),
            ("a1", "b3"),
            ("a2", "b1"),
            ("a3", "b1"),
            ("a3", "b2"),
        ] {
            db.insert_values("R", [Value::str(a), Value::str(b)])
                .unwrap();
        }
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        (db, sigma)
    }

    #[test]
    fn figure2_blocks_have_sizes_3_1_2() {
        let (db, sigma) = figure2();
        let partition = BlockPartition::compute(&db, &sigma).unwrap();
        let mut sizes: Vec<usize> = partition.blocks().iter().map(Block::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(partition.non_singleton_blocks().len(), 2);
    }

    #[test]
    fn block_of_fact_lookup() {
        let (db, sigma) = figure2();
        let partition = BlockPartition::compute(&db, &sigma).unwrap();
        // f0, f1, f2 share the block keyed by a1.
        assert_eq!(
            partition.block_index_of(FactId::new(0)),
            partition.block_index_of(FactId::new(2))
        );
        assert_ne!(
            partition.block_index_of(FactId::new(0)),
            partition.block_index_of(FactId::new(3))
        );
        assert_eq!(partition.block_of(FactId::new(3)).len(), 1);
        assert_eq!(
            partition.block_of(FactId::new(0)).key_values(),
            &[Value::str("a1")]
        );
    }

    #[test]
    fn non_primary_keys_rejected() {
        let (db, _) = figure2();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A2"], &["A1"]).unwrap());
        assert!(BlockPartition::compute(&db, &sigma).is_err());
        // But the unchecked variant still produces a partition based on the
        // first key.
        let partition = BlockPartition::compute_unchecked(&db, &sigma);
        assert_eq!(partition.len(), 3);
    }

    #[test]
    fn relations_without_keys_get_singleton_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B"]).unwrap();
        schema.add_relation("T", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::int(1), Value::int(2)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        db.insert_values("T", [Value::int(9)]).unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        let partition = BlockPartition::compute(&db, &sigma).unwrap();
        assert_eq!(partition.len(), 2);
        assert_eq!(partition.block_of(FactId::new(2)).len(), 1);
    }
}
