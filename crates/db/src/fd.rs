//! Functional dependencies, keys, and primary keys.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::{AttributeId, Database, DbError, Fact, FactSet, RelationId, Schema};

/// Identifier of an FD within an [`FdSet`] (dense, zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FdId(pub(crate) u32);

impl FdId {
    /// Constructs an FD id from a raw index.
    pub fn new(index: usize) -> Self {
        FdId(index as u32)
    }

    /// The raw index of this FD within its [`FdSet`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A functional dependency `φ = R : X → Y` over a schema (Section 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    relation: RelationId,
    lhs: BTreeSet<AttributeId>,
    rhs: BTreeSet<AttributeId>,
}

impl FunctionalDependency {
    /// Constructs `R : X → Y` from attribute positions.
    ///
    /// Both sides must be non-empty and all positions must be within the
    /// relation's arity.
    pub fn new(
        schema: &Schema,
        relation: RelationId,
        lhs: impl IntoIterator<Item = AttributeId>,
        rhs: impl IntoIterator<Item = AttributeId>,
    ) -> Result<Self, DbError> {
        let lhs: BTreeSet<AttributeId> = lhs.into_iter().collect();
        let rhs: BTreeSet<AttributeId> = rhs.into_iter().collect();
        if lhs.is_empty() || rhs.is_empty() {
            return Err(DbError::EmptyFdSide {
                relation: schema.relation_name(relation).to_string(),
            });
        }
        let arity = schema.arity(relation);
        for attr in lhs.iter().chain(rhs.iter()) {
            if attr.index() >= arity {
                return Err(DbError::UnknownAttribute {
                    relation: schema.relation_name(relation).to_string(),
                    attribute: format!("#{}", attr.index()),
                });
            }
        }
        Ok(FunctionalDependency { relation, lhs, rhs })
    }

    /// Constructs `R : X → Y` from relation and attribute *names*.
    pub fn from_names(
        schema: &Schema,
        relation: &str,
        lhs: &[&str],
        rhs: &[&str],
    ) -> Result<Self, DbError> {
        let rel = schema.relation_id(relation)?;
        let lhs_ids: Result<Vec<_>, _> = lhs.iter().map(|a| schema.attribute_id(rel, a)).collect();
        let rhs_ids: Result<Vec<_>, _> = rhs.iter().map(|a| schema.attribute_id(rel, a)).collect();
        FunctionalDependency::new(schema, rel, lhs_ids?, rhs_ids?)
    }

    /// Constructs the key `R : X → att(R)` from the left-hand side
    /// positions.
    pub fn key(
        schema: &Schema,
        relation: RelationId,
        lhs: impl IntoIterator<Item = AttributeId>,
    ) -> Result<Self, DbError> {
        let all = schema.all_attributes(relation);
        FunctionalDependency::new(schema, relation, lhs, all)
    }

    /// The relation this FD constrains.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The left-hand side `X`.
    pub fn lhs(&self) -> &BTreeSet<AttributeId> {
        &self.lhs
    }

    /// The right-hand side `Y`.
    pub fn rhs(&self) -> &BTreeSet<AttributeId> {
        &self.rhs
    }

    /// Returns `true` iff this FD is a *key*, i.e. `X ∪ Y = att(R)`.
    pub fn is_key(&self, schema: &Schema) -> bool {
        let mut union = self.lhs.clone();
        union.extend(self.rhs.iter().copied());
        union.len() == schema.arity(self.relation)
    }

    /// Returns `true` iff the two facts *jointly satisfy* this FD, i.e.
    /// `{f, g} ⊨ φ`.  (Facts over other relations satisfy it vacuously.)
    pub fn satisfied_by_pair(&self, f: &Fact, g: &Fact) -> bool {
        if f.relation() != self.relation || g.relation() != self.relation {
            return true;
        }
        let agree_on =
            |attrs: &BTreeSet<AttributeId>| attrs.iter().all(|a| f.value_at(*a) == g.value_at(*a));
        if agree_on(&self.lhs) {
            agree_on(&self.rhs)
        } else {
            true
        }
    }

    /// Renders the FD using the attribute names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FdDisplay<'a> {
        FdDisplay { fd: self, schema }
    }
}

/// Helper for displaying an FD with names resolved against a schema.
pub struct FdDisplay<'a> {
    fd: &'a FunctionalDependency,
    schema: &'a Schema,
}

impl fmt::Display for FdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |attrs: &BTreeSet<AttributeId>| {
            attrs
                .iter()
                .map(|a| self.schema.attribute_name(self.fd.relation, *a).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "{} : {} -> {}",
            self.schema.relation_name(self.fd.relation),
            names(&self.fd.lhs),
            names(&self.fd.rhs)
        )
    }
}

/// A finite set `Σ` of functional dependencies over a schema.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    fds: Vec<FunctionalDependency>,
}

impl FdSet {
    /// Creates an empty FD set.
    pub fn new() -> Self {
        FdSet::default()
    }

    /// Creates an FD set from a vector of FDs.
    pub fn from_fds(fds: Vec<FunctionalDependency>) -> Self {
        FdSet { fds }
    }

    /// Adds an FD and returns its id.
    pub fn add(&mut self, fd: FunctionalDependency) -> FdId {
        let id = FdId::new(self.fds.len());
        self.fds.push(fd);
        id
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The FD with the given id.
    pub fn fd(&self, id: FdId) -> &FunctionalDependency {
        &self.fds[id.index()]
    }

    /// Iterates over `(id, fd)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FdId, &FunctionalDependency)> + '_ {
        self.fds
            .iter()
            .enumerate()
            .map(|(i, fd)| (FdId::new(i), fd))
    }

    /// The FDs constraining a given relation.
    pub fn fds_of(&self, relation: RelationId) -> Vec<FdId> {
        self.iter()
            .filter(|(_, fd)| fd.relation() == relation)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns `true` iff every FD in the set is a key (`X ∪ Y = att(R)`).
    pub fn is_keys(&self, schema: &Schema) -> bool {
        self.fds.iter().all(|fd| fd.is_key(schema))
    }

    /// Returns `true` iff the set is a set of *primary keys*: every FD is a
    /// key and no relation has more than one key.
    pub fn is_primary_keys(&self, schema: &Schema) -> bool {
        if !self.is_keys(schema) {
            return false;
        }
        let mut seen: HashMap<RelationId, usize> = HashMap::new();
        for fd in &self.fds {
            *seen.entry(fd.relation()).or_insert(0) += 1;
        }
        seen.values().all(|count| *count <= 1)
    }

    /// Validates that this set is a set of primary keys, with a descriptive
    /// error otherwise.
    pub fn require_primary_keys(&self, schema: &Schema) -> Result<(), DbError> {
        if !self.is_keys(schema) {
            return Err(DbError::NotPrimaryKeys {
                reason: "it contains a non-key functional dependency".to_string(),
            });
        }
        let mut seen: HashMap<RelationId, usize> = HashMap::new();
        for fd in &self.fds {
            *seen.entry(fd.relation()).or_insert(0) += 1;
        }
        for (rel, count) in seen {
            if count > 1 {
                return Err(DbError::NotPrimaryKeys {
                    reason: format!("relation `{}` has {count} keys", schema.relation_name(rel)),
                });
            }
        }
        Ok(())
    }

    /// Validates that this set is a set of keys, with a descriptive error
    /// otherwise.
    pub fn require_keys(&self, schema: &Schema) -> Result<(), DbError> {
        for fd in &self.fds {
            if !fd.is_key(schema) {
                return Err(DbError::NotKeys {
                    reason: format!("`{}` is not a key", fd.display(schema)),
                });
            }
        }
        Ok(())
    }

    /// The maximal number of keys/FDs over a single relation name — the
    /// constant `k` of Proposition 7.3 and Lemma D.1.
    pub fn max_fds_per_relation(&self) -> usize {
        let mut counts: HashMap<RelationId, usize> = HashMap::new();
        for fd in &self.fds {
            *counts.entry(fd.relation()).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Whether a *pair* of facts jointly satisfies every FD of the set, i.e.
    /// `{f, g} ⊨ Σ`.
    pub fn pair_satisfies(&self, f: &Fact, g: &Fact) -> bool {
        self.fds.iter().all(|fd| fd.satisfied_by_pair(f, g))
    }

    /// Whether the sub-database `subset ⊆ D` satisfies the whole set, i.e.
    /// `D' ⊨ Σ`.
    pub fn satisfied_by(&self, db: &Database, subset: &FactSet) -> bool {
        // Pairwise check per relation; FDs are binary constraints so this is
        // complete.  Violation detection with indexes lives in
        // `crate::violation`; this method is the simple reference check.
        let facts: Vec<_> = subset.iter().collect();
        for (i, a) in facts.iter().enumerate() {
            for b in facts.iter().skip(i + 1) {
                if !self.pair_satisfies(&db.fact(*a), &db.fact(*b)) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the whole database satisfies the set, i.e. `D ⊨ Σ`.
    pub fn satisfied_by_database(&self, db: &Database) -> bool {
        self.satisfied_by(db, &db.all_facts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn schema_r3() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("R", &["A", "B", "C"]).unwrap();
        schema
    }

    #[test]
    fn construction_and_key_detection() {
        let schema = schema_r3();
        let fd = FunctionalDependency::from_names(&schema, "R", &["A"], &["B"]).unwrap();
        assert!(!fd.is_key(&schema));
        let key = FunctionalDependency::from_names(&schema, "R", &["A"], &["B", "C"]).unwrap();
        assert!(key.is_key(&schema));
        let r = schema.relation_id("R").unwrap();
        let key2 = FunctionalDependency::key(&schema, r, [AttributeId::new(0)]).unwrap();
        assert!(key2.is_key(&schema));
    }

    #[test]
    fn invalid_fds_rejected() {
        let schema = schema_r3();
        assert!(matches!(
            FunctionalDependency::from_names(&schema, "R", &[], &["B"]),
            Err(DbError::EmptyFdSide { .. })
        ));
        assert!(matches!(
            FunctionalDependency::from_names(&schema, "R", &["Z"], &["B"]),
            Err(DbError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            FunctionalDependency::from_names(&schema, "S", &["A"], &["B"]),
            Err(DbError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn pair_satisfaction() {
        let schema = schema_r3();
        let r = schema.relation_id("R").unwrap();
        let fd = FunctionalDependency::from_names(&schema, "R", &["A"], &["B"]).unwrap();
        let f1 = Fact::new(r, vec![Value::int(1), Value::int(1), Value::int(1)]);
        let f2 = Fact::new(r, vec![Value::int(1), Value::int(2), Value::int(2)]);
        let f3 = Fact::new(r, vec![Value::int(2), Value::int(9), Value::int(9)]);
        assert!(!fd.satisfied_by_pair(&f1, &f2));
        assert!(fd.satisfied_by_pair(&f1, &f3));
        assert!(fd.satisfied_by_pair(&f1, &f1));
    }

    #[test]
    fn primary_keys_and_keys_classification() {
        let schema = schema_r3();
        let mut pk = FdSet::new();
        pk.add(FunctionalDependency::from_names(&schema, "R", &["A"], &["B", "C"]).unwrap());
        assert!(pk.is_primary_keys(&schema));
        assert!(pk.is_keys(&schema));
        assert!(pk.require_primary_keys(&schema).is_ok());

        let mut keys = FdSet::new();
        keys.add(FunctionalDependency::from_names(&schema, "R", &["A"], &["B", "C"]).unwrap());
        keys.add(FunctionalDependency::from_names(&schema, "R", &["B"], &["A", "C"]).unwrap());
        assert!(keys.is_keys(&schema));
        assert!(!keys.is_primary_keys(&schema));
        assert!(keys.require_primary_keys(&schema).is_err());
        assert_eq!(keys.max_fds_per_relation(), 2);

        let mut fds = FdSet::new();
        fds.add(FunctionalDependency::from_names(&schema, "R", &["A"], &["B"]).unwrap());
        assert!(!fds.is_keys(&schema));
        assert!(fds.require_keys(&schema).is_err());
    }

    #[test]
    fn running_example_is_inconsistent() {
        // Example 3.6: D = {R(a1,b1,c1), R(a1,b2,c2), R(a2,b1,c2)},
        // Σ = {A→B, C→B}.  D does not satisfy Σ.
        let schema = schema_r3();
        let mut db = Database::with_schema(schema);
        db.insert_values("R", [Value::str("a1"), Value::str("b1"), Value::str("c1")])
            .unwrap();
        db.insert_values("R", [Value::str("a1"), Value::str("b2"), Value::str("c2")])
            .unwrap();
        db.insert_values("R", [Value::str("a2"), Value::str("b1"), Value::str("c2")])
            .unwrap();
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"]).unwrap());
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["C"], &["B"]).unwrap());
        assert!(!sigma.satisfied_by_database(&db));
        // Removing f2 = R(a1,b2,c2) restores consistency.
        let mut subset = db.all_facts();
        subset.remove(crate::FactId::new(1));
        assert!(sigma.satisfied_by(&db, &subset));
    }

    #[test]
    fn fd_display() {
        let schema = schema_r3();
        let fd = FunctionalDependency::from_names(&schema, "R", &["A"], &["B"]).unwrap();
        assert_eq!(fd.display(&schema).to_string(), "R : A -> B");
    }
}
