//! # `ucqa-numeric`
//!
//! Exact arithmetic substrate for the uniform operational CQA reproduction.
//!
//! The counting quantities appearing in the paper (numbers of candidate
//! repairs, numbers of complete repairing sequences, the dynamic program of
//! Lemma C.1) grow factorially in the database size and overflow machine
//! integers for databases with only a few dozen facts.  The offline
//! dependency set for this project does not include `num-bigint`, so this
//! crate provides the required arithmetic from scratch:
//!
//! * [`Natural`] — an arbitrary-precision unsigned integer (base `2^32`
//!   limbs) with addition, subtraction, multiplication, division with
//!   remainder, comparison, and conversions.
//! * [`Ratio`] — an exact non-negative rational number over [`Natural`],
//!   always kept in lowest terms, used for exact repair probabilities and
//!   relative frequencies (so the paper's fractions such as `1/9`, `3/5`,
//!   `24/99` are reproduced exactly).
//! * [`combinatorics`] — factorials, binomial coefficients and falling
//!   factorials over [`Natural`].
//! * [`LogFloat`] — a non-negative real stored in log-space, used by the
//!   samplers when exact products of many probabilities would underflow
//!   `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinatorics;
mod logfloat;
mod natural;
mod ratio;

pub use logfloat::LogFloat;
pub use natural::Natural;
pub use ratio::Ratio;
