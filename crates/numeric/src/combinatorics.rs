//! Factorials, binomial coefficients and related counting helpers.
//!
//! These are the ingredients of the closed-form sequence counts of
//! Lemma C.1 (`S^{ne,i}_m`, `S^{e,i}_m`) and of the interleaving factors of
//! the dynamic program `P^{k,i}_j`.

use crate::Natural;

/// `n!` as a [`Natural`].
pub fn factorial(n: u64) -> Natural {
    let mut result = Natural::one();
    for i in 2..=n {
        result = &result * &Natural::from_u64(i);
    }
    result
}

/// The binomial coefficient `C(n, k)`; zero when `k > n`.
pub fn binomial(n: u64, k: u64) -> Natural {
    if k > n {
        return Natural::zero();
    }
    let k = k.min(n - k);
    let mut result = Natural::one();
    for i in 0..k {
        result = &result * &Natural::from_u64(n - i);
        let (q, r) = result.div_rem(&Natural::from_u64(i + 1));
        debug_assert!(r.is_zero(), "binomial intermediate not divisible");
        result = q;
    }
    result
}

/// The falling factorial `n · (n−1) · … · (n−k+1)`; `1` when `k == 0`.
pub fn falling_factorial(n: u64, k: u64) -> Natural {
    if k > n {
        return Natural::zero();
    }
    let mut result = Natural::one();
    for i in 0..k {
        result = &result * &Natural::from_u64(n - i);
    }
    result
}

/// Number of ways to partition `2i` distinguishable elements into `i`
/// unordered pairs: `(2i)! / (2^i · i!)`.
///
/// This is the "number of ways to split 2i facts into i pairs" factor used
/// in Lemma C.1.
pub fn pairings(i: u64) -> Natural {
    if i == 0 {
        return Natural::one();
    }
    let numerator = factorial(2 * i);
    let denominator = &Natural::from_u64(2).pow(i as u32) * &factorial(i);
    let (q, r) = numerator.div_rem(&denominator);
    debug_assert!(r.is_zero(), "pairings intermediate not divisible");
    q
}

/// The multinomial-style interleaving factor `(a + b)! / (a! · b!)`, i.e.
/// the number of ways to interleave a sequence of length `a` with a
/// sequence of length `b` while preserving both internal orders.
pub fn interleavings(a: u64, b: u64) -> Natural {
    binomial(a + b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(1).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
        assert_eq!(factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
    }

    #[test]
    fn factorial_large_value_has_expected_length() {
        assert_eq!(factorial(100).to_string().len(), 158);
    }

    #[test]
    fn binomial_matches_pascal_triangle() {
        assert_eq!(binomial(5, 0).to_u64(), Some(1));
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(5, 5).to_u64(), Some(1));
        assert_eq!(binomial(5, 6).to_u64(), Some(0));
        assert_eq!(binomial(50, 25).to_string(), "126410606437752");
        // Pascal identity on a grid of values.
        for n in 1..20u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = &binomial(n - 1, k - 1) + &binomial(n - 1, k);
                assert_eq!(lhs, rhs, "Pascal identity failed at ({n},{k})");
            }
        }
    }

    #[test]
    fn falling_factorial_values() {
        assert_eq!(falling_factorial(7, 0).to_u64(), Some(1));
        assert_eq!(falling_factorial(7, 3).to_u64(), Some(210));
        assert_eq!(falling_factorial(3, 5).to_u64(), Some(0));
    }

    #[test]
    fn pairings_values() {
        // 1, 1, 3, 15, 105 — double factorials (2i-1)!!
        assert_eq!(pairings(0).to_u64(), Some(1));
        assert_eq!(pairings(1).to_u64(), Some(1));
        assert_eq!(pairings(2).to_u64(), Some(3));
        assert_eq!(pairings(3).to_u64(), Some(15));
        assert_eq!(pairings(4).to_u64(), Some(105));
    }

    #[test]
    fn interleavings_values() {
        assert_eq!(interleavings(0, 0).to_u64(), Some(1));
        assert_eq!(interleavings(2, 3).to_u64(), Some(10));
        assert_eq!(interleavings(3, 2), interleavings(2, 3));
    }
}
