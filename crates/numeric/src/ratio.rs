//! Exact non-negative rational numbers.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};

use crate::Natural;

/// An exact non-negative rational number, always stored in lowest terms with
/// a non-zero denominator.
///
/// The operational semantics of the paper only ever manipulates
/// probabilities and relative frequencies, i.e. values in `[0, 1]` and their
/// sums, so an unsigned rational suffices.  Keeping the arithmetic exact is
/// what allows the test-suite and the experiment harness to reproduce the
/// paper's fractions (`1/9`, `3/5`, `1/5`, `1/4`, `24/99`, …) verbatim.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    numerator: Natural,
    denominator: Natural,
}

impl Ratio {
    /// The value `0`.
    pub fn zero() -> Self {
        Ratio {
            numerator: Natural::zero(),
            denominator: Natural::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Ratio {
            numerator: Natural::one(),
            denominator: Natural::one(),
        }
    }

    /// Constructs `numerator / denominator`, reduced to lowest terms.
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    pub fn new(numerator: Natural, denominator: Natural) -> Self {
        assert!(!denominator.is_zero(), "Ratio with zero denominator");
        let mut ratio = Ratio {
            numerator,
            denominator,
        };
        ratio.reduce();
        ratio
    }

    /// Convenience constructor from machine integers.
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    pub fn from_u64(numerator: u64, denominator: u64) -> Self {
        Ratio::new(Natural::from_u64(numerator), Natural::from_u64(denominator))
    }

    /// Constructs the integer value `value`.
    pub fn from_natural(value: Natural) -> Self {
        Ratio {
            numerator: value,
            denominator: Natural::one(),
        }
    }

    /// The numerator (in lowest terms).
    pub fn numerator(&self) -> &Natural {
        &self.numerator
    }

    /// The denominator (in lowest terms, never zero).
    pub fn denominator(&self) -> &Natural {
        &self.denominator
    }

    /// Returns `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.numerator == self.denominator
    }

    /// Reduces the fraction to lowest terms.
    fn reduce(&mut self) {
        if self.numerator.is_zero() {
            self.denominator = Natural::one();
            return;
        }
        let gcd = self.numerator.gcd(&self.denominator);
        if !gcd.is_one() {
            self.numerator = &self.numerator / &gcd;
            self.denominator = &self.denominator / &gcd;
        }
    }

    /// Approximates the value as an `f64`.
    pub fn to_f64(&self) -> f64 {
        if self.numerator.is_zero() {
            return 0.0;
        }
        let num = self.numerator.to_f64();
        let den = self.denominator.to_f64();
        if num.is_finite() && den.is_finite() && den != 0.0 {
            num / den
        } else {
            // Fall back to log-space for huge operands.
            (self.numerator.ln() - self.denominator.ln()).exp()
        }
    }

    /// Checked subtraction: `self - other`, or `None` if the result would be
    /// negative.
    pub fn checked_sub(&self, other: &Ratio) -> Option<Ratio> {
        let left = &self.numerator * &other.denominator;
        let right = &other.numerator * &self.denominator;
        let diff = left.checked_sub(&right)?;
        Some(Ratio::new(diff, &self.denominator * &other.denominator))
    }

    /// The reciprocal `1 / self`.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        Ratio {
            numerator: self.denominator.clone(),
            denominator: self.numerator.clone(),
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denominator.is_one() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        let left = &self.numerator * &other.denominator;
        let right = &other.numerator * &self.denominator;
        left.cmp(&right)
    }
}

impl Add for &Ratio {
    type Output = Ratio;

    fn add(self, rhs: &Ratio) -> Ratio {
        let numerator =
            &(&self.numerator * &rhs.denominator) + &(&rhs.numerator * &self.denominator);
        Ratio::new(numerator, &self.denominator * &rhs.denominator)
    }
}

impl Add for Ratio {
    type Output = Ratio;

    fn add(self, rhs: Ratio) -> Ratio {
        &self + &rhs
    }
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl Sub for &Ratio {
    type Output = Ratio;

    /// # Panics
    /// Panics if the result would be negative.
    fn sub(self, rhs: &Ratio) -> Ratio {
        self.checked_sub(rhs).expect("Ratio subtraction underflow")
    }
}

impl Mul for &Ratio {
    type Output = Ratio;

    fn mul(self, rhs: &Ratio) -> Ratio {
        Ratio::new(
            &self.numerator * &rhs.numerator,
            &self.denominator * &rhs.denominator,
        )
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    fn mul(self, rhs: Ratio) -> Ratio {
        &self * &rhs
    }
}

impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl Div for &Ratio {
    type Output = Ratio;

    /// # Panics
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Ratio) -> Ratio {
        self * &rhs.recip()
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| &acc + &x)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| &acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64, d: u64) -> Ratio {
        Ratio::from_u64(n, d)
    }

    #[test]
    fn reduction_to_lowest_terms() {
        let x = r(6, 9);
        assert_eq!(x.numerator().to_u64(), Some(2));
        assert_eq!(x.denominator().to_u64(), Some(3));
        assert_eq!(r(0, 7), Ratio::zero());
    }

    #[test]
    fn addition_and_multiplication() {
        assert_eq!(&r(1, 9) + &r(2, 9), r(1, 3));
        assert_eq!(&r(3, 9) * &r(1, 3), r(1, 9));
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
    }

    #[test]
    fn paper_running_example_probabilities_sum_to_one() {
        // Uniform sequences: p1 = p5 = 3/9, p2 = p3 = p4 = 1/9.
        let sum: Ratio = [r(3, 9), r(1, 9), r(1, 9), r(1, 9), r(3, 9)].iter().sum();
        assert!(sum.is_one());
        // Uniform repairs: 3/5 + 0 + 1/5 + 1/5 + 0 = 1.
        let sum: Ratio = [r(3, 5), Ratio::zero(), r(1, 5), r(1, 5), Ratio::zero()]
            .iter()
            .sum();
        assert!(sum.is_one());
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(7, 3) > r(2, 1));
    }

    #[test]
    fn subtraction_and_division() {
        assert_eq!(&r(5, 6) - &r(1, 2), r(1, 3));
        assert!(r(1, 3).checked_sub(&r(1, 2)).is_none());
        assert_eq!(&r(1, 3) / &r(1, 6), r(2, 1));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn to_f64_accuracy() {
        assert!((r(1, 4).to_f64() - 0.25).abs() < 1e-15);
        assert!((r(24, 99).to_f64() - 24.0 / 99.0).abs() < 1e-15);
    }

    #[test]
    fn display_format() {
        assert_eq!(r(3, 5).to_string(), "3/5");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(Ratio::zero().to_string(), "0");
    }
}
