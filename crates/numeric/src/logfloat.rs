//! Non-negative reals in log-space.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Div, Mul, MulAssign};

/// A non-negative real number stored as its natural logarithm.
///
/// The leaf probability of a long repairing sequence is a product of many
/// factors of the form `1/|Ops_s(D,Σ)|`; for databases with thousands of
/// facts such products underflow `f64` long before they stop being
/// meaningful.  [`LogFloat`] keeps the product exact enough (one `f64`
/// addition per factor) for the samplers and diagnostics that need it.
#[derive(Clone, Copy, PartialEq)]
pub struct LogFloat {
    ln: f64,
}

impl LogFloat {
    /// The value `0` (log = −∞).
    pub fn zero() -> Self {
        LogFloat {
            ln: f64::NEG_INFINITY,
        }
    }

    /// The value `1` (log = 0).
    pub fn one() -> Self {
        LogFloat { ln: 0.0 }
    }

    /// Constructs a [`LogFloat`] from a plain non-negative value.
    ///
    /// # Panics
    /// Panics if `value` is negative or NaN.
    pub fn from_value(value: f64) -> Self {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "LogFloat requires a non-negative value, got {value}"
        );
        LogFloat { ln: value.ln() }
    }

    /// Constructs a [`LogFloat`] directly from a natural logarithm.
    pub fn from_ln(ln: f64) -> Self {
        LogFloat { ln }
    }

    /// The natural logarithm of the value (−∞ for zero).
    pub fn ln(&self) -> f64 {
        self.ln
    }

    /// The value as a plain `f64` (may underflow to `0` or overflow to
    /// `inf`).
    pub fn to_f64(&self) -> f64 {
        self.ln.exp()
    }

    /// Returns `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Adds two log-space values using the log-sum-exp trick.
    pub fn add(&self, other: &LogFloat) -> LogFloat {
        if self.is_zero() {
            return *other;
        }
        if other.is_zero() {
            return *self;
        }
        let (hi, lo) = if self.ln >= other.ln {
            (self.ln, other.ln)
        } else {
            (other.ln, self.ln)
        };
        LogFloat {
            ln: hi + (lo - hi).exp().ln_1p(),
        }
    }
}

impl fmt::Debug for LogFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogFloat(e^{})", self.ln)
    }
}

impl fmt::Display for LogFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl PartialOrd for LogFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl Mul for LogFloat {
    type Output = LogFloat;

    fn mul(self, rhs: LogFloat) -> LogFloat {
        if self.is_zero() || rhs.is_zero() {
            return LogFloat::zero();
        }
        LogFloat {
            ln: self.ln + rhs.ln,
        }
    }
}

impl MulAssign for LogFloat {
    fn mul_assign(&mut self, rhs: LogFloat) {
        *self = *self * rhs;
    }
}

impl Div for LogFloat {
    type Output = LogFloat;

    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: LogFloat) -> LogFloat {
        assert!(!rhs.is_zero(), "division of LogFloat by zero");
        if self.is_zero() {
            return LogFloat::zero();
        }
        LogFloat {
            ln: self.ln - rhs.ln,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_of_many_small_factors_do_not_underflow() {
        // (1/10)^400 underflows f64 (min positive ~1e-308) but stays
        // meaningful in log space.
        let mut product = LogFloat::one();
        for _ in 0..400 {
            product *= LogFloat::from_value(0.1);
        }
        assert!(
            product.to_f64() == 0.0,
            "plain f64 representation underflows"
        );
        assert!((product.ln() - 400.0 * 0.1f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn add_matches_plain_addition() {
        let a = LogFloat::from_value(0.25);
        let b = LogFloat::from_value(0.5);
        assert!((a.add(&b).to_f64() - 0.75).abs() < 1e-12);
        assert!((a.add(&LogFloat::zero()).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = LogFloat::from_value(0.3);
        let b = LogFloat::from_value(0.7);
        let c = a * b / b;
        assert!((c.to_f64() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(LogFloat::from_value(0.1) < LogFloat::from_value(0.2));
        assert!(LogFloat::zero() < LogFloat::from_value(1e-300));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_value_panics() {
        let _ = LogFloat::from_value(-1.0);
    }
}
