//! Arbitrary-precision unsigned integers.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Sub, SubAssign};

const BASE_BITS: u32 = 32;

/// An arbitrary-precision unsigned ("natural") integer.
///
/// Stored as little-endian `u32` limbs (least-significant limb first) with
/// no trailing zero limbs; the value zero is represented by an empty limb
/// vector.  The implementation favours clarity and correctness over raw
/// speed: the magnitudes appearing in the repair-counting algorithms are
/// large (hundreds to a few thousand bits) but the arithmetic is never the
/// bottleneck of the algorithms that use it.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    /// Little-endian limbs, no trailing zeros.
    limbs: Vec<u32>,
}

impl Natural {
    /// The value `0`.
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Returns `true` iff this is the value `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff this is the value `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Constructs a natural from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let lo = (value & 0xFFFF_FFFF) as u32;
        let hi = (value >> 32) as u32;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Constructs a natural from little-endian `u32` limbs (trailing zero
    /// limbs are stripped).
    ///
    /// Intended for bulk construction such as drawing uniformly random
    /// naturals below a bound; prefer [`Natural::from_u64`] for ordinary
    /// values.
    pub fn from_limbs_le(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// The number of `u32` limbs of the value (0 for zero).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Constructs a natural from a `u128`.
    pub fn from_u128(value: u128) -> Self {
        let mut limbs = Vec::with_capacity(4);
        let mut v = value;
        while v != 0 {
            limbs.push((v & 0xFFFF_FFFF) as u32);
            v >>= 32;
        }
        Natural { limbs }
    }

    /// Returns the value as a `u64` if it fits, `None` otherwise.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Returns the value as a `u128` if it fits, `None` otherwise.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, limb) in self.limbs.iter().enumerate() {
            v |= u128::from(*limb) << (32 * i as u32);
        }
        Some(v)
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u64 - 1) * u64::from(BASE_BITS)
                    + u64::from(32 - top.leading_zeros())
            }
        }
    }

    /// Approximates the value as an `f64` (may lose precision, may be
    /// `f64::INFINITY` for huge values).
    pub fn to_f64(&self) -> f64 {
        let mut value = 0.0f64;
        for limb in self.limbs.iter().rev() {
            value = value * 4_294_967_296.0 + f64::from(*limb);
        }
        value
    }

    /// Natural logarithm of the value; `-inf` for zero.
    pub fn ln(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        // Use the top 128 bits for the mantissa and account for the shift.
        let bits = self.bits();
        if bits <= 64 {
            return (self.to_u64().expect("fits in u64") as f64).ln();
        }
        let shift = bits - 64;
        let shifted = self.shr_bits(shift);
        let mantissa = shifted.to_u64().expect("shifted value fits in u64") as f64;
        mantissa.ln() + (shift as f64) * std::f64::consts::LN_2
    }

    /// Logical right shift by `bits` bits.
    fn shr_bits(&self, bits: u64) -> Natural {
        let limb_shift = (bits / u64::from(BASE_BITS)) as usize;
        let bit_shift = (bits % u64::from(BASE_BITS)) as u32;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let mut limbs = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry = 0u32;
            for limb in limbs.iter_mut().rev() {
                let new_carry = *limb << (32 - bit_shift);
                *limb = (*limb >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Checked subtraction: `self - other`, or `None` if `other > self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i64 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        debug_assert_eq!(borrow, 0, "subtraction underflow despite ordering check");
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Some(Natural { limbs })
    }

    /// Multiplies by a single `u32` digit.
    fn mul_u32(&self, digit: u32) -> Natural {
        if digit == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for limb in &self.limbs {
            let prod = u64::from(*limb) * u64::from(digit) + carry;
            limbs.push((prod & 0xFFFF_FFFF) as u32);
            carry = prod >> 32;
        }
        if carry > 0 {
            limbs.push(carry as u32);
        }
        Natural { limbs }
    }

    /// Divides by a single `u32` digit, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `digit == 0`.
    fn div_rem_u32(&self, digit: u32) -> (Natural, u32) {
        assert!(digit != 0, "division by zero");
        let mut quotient = vec![0u32; self.limbs.len()];
        let mut remainder = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (remainder << 32) | u64::from(self.limbs[i]);
            quotient[i] = (cur / u64::from(digit)) as u32;
            remainder = cur % u64::from(digit);
        }
        while quotient.last() == Some(&0) {
            quotient.pop();
        }
        (Natural { limbs: quotient }, remainder as u32)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `remainder < divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Natural::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(divisor.limbs[0]);
            return (q, Natural::from_u64(u64::from(r)));
        }
        // Schoolbook long division, binary-shift variant: simple and
        // adequate for the magnitudes used in this project.
        let mut remainder = Natural::zero();
        let mut quotient_bits = vec![false; self.bits() as usize];
        for bit in (0..self.bits()).rev() {
            // remainder = remainder * 2 + bit(self, bit)
            remainder = remainder.shl1();
            if self.bit(bit) {
                remainder = &remainder + &Natural::one();
            }
            if remainder >= *divisor {
                remainder = remainder
                    .checked_sub(divisor)
                    .expect("remainder >= divisor ensured by comparison");
                quotient_bits[bit as usize] = true;
            }
        }
        let mut quotient = Natural::zero();
        for bit in (0..quotient_bits.len()).rev() {
            quotient = quotient.shl1();
            if quotient_bits[bit] {
                quotient = &quotient + &Natural::one();
            }
        }
        (quotient, remainder)
    }

    /// Left shift by one bit.
    fn shl1(&self) -> Natural {
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u32;
        for limb in &self.limbs {
            limbs.push((limb << 1) | carry);
            carry = limb >> 31;
        }
        if carry > 0 {
            limbs.push(carry);
        }
        Natural { limbs }
    }

    /// Returns bit `index` (0 = least significant).
    fn bit(&self, index: u64) -> bool {
        let limb = (index / u64::from(BASE_BITS)) as usize;
        let bit = (index % u64::from(BASE_BITS)) as u32;
        match self.limbs.get(limb) {
            Some(l) => (l >> bit) & 1 == 1,
            None => false,
        }
    }

    /// Greatest common divisor (binary-free Euclid via `div_rem`).
    pub fn gcd(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut result = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        result
    }

    /// Parses a decimal string.
    ///
    /// Returns `None` on empty input or any non-digit character.
    pub fn from_decimal_str(text: &str) -> Option<Natural> {
        if text.is_empty() {
            return None;
        }
        let mut value = Natural::zero();
        for ch in text.chars() {
            let digit = ch.to_digit(10)?;
            value = value.mul_u32(10) + Natural::from_u64(u64::from(digit));
        }
        Some(value)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({self})")
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut value = self.clone();
        while !value.is_zero() {
            let (q, r) = value.div_rem_u32(1_000_000_000);
            digits.push(r);
            value = q;
        }
        let mut out = String::new();
        for (i, chunk) in digits.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&chunk.to_string());
            } else {
                out.push_str(&format!("{chunk:09}"));
            }
        }
        f.write_str(&out)
    }
}

impl From<u64> for Natural {
    fn from(value: u64) -> Self {
        Natural::from_u64(value)
    }
}

impl From<u32> for Natural {
    fn from(value: u32) -> Self {
        Natural::from_u64(u64::from(value))
    }
}

impl From<usize> for Natural {
    fn from(value: usize) -> Self {
        Natural::from_u64(value as u64)
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl Add for &Natural {
    type Output = Natural;

    fn add(self, rhs: &Natural) -> Natural {
        let (longer, shorter) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(longer.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.limbs.len() {
            let sum = u64::from(longer.limbs[i])
                + u64::from(shorter.limbs.get(i).copied().unwrap_or(0))
                + carry;
            limbs.push((sum & 0xFFFF_FFFF) as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            limbs.push(carry as u32);
        }
        Natural { limbs }
    }
}

impl Add for Natural {
    type Output = Natural;

    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = &*self + rhs;
    }
}

impl Sub for &Natural {
    type Output = Natural;

    /// # Panics
    /// Panics if the result would be negative.
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs)
            .expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;

    fn sub(self, rhs: Natural) -> Natural {
        &self - &rhs
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = &*self - rhs;
    }
}

impl Mul for &Natural {
    type Output = Natural;

    fn mul(self, rhs: &Natural) -> Natural {
        if self.is_zero() || rhs.is_zero() {
            return Natural::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, b) in rhs.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = u64::from(limbs[idx]) + u64::from(*a) * u64::from(*b) + carry;
                limbs[idx] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut idx = i + rhs.limbs.len();
            while carry > 0 {
                let cur = u64::from(limbs[idx]) + carry;
                limbs[idx] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }
}

impl Mul for Natural {
    type Output = Natural;

    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}

impl Div for &Natural {
    type Output = Natural;

    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl Rem for &Natural {
    type Output = Natural;

    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Sum for Natural {
    fn sum<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |acc, x| &acc + &x)
    }
}

impl<'a> Sum<&'a Natural> for Natural {
    fn sum<I: Iterator<Item = &'a Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |acc, x| &acc + x)
    }
}

impl Product for Natural {
    fn product<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::one(), |acc, x| &acc * &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::zero().to_u64(), Some(0));
        assert_eq!(Natural::one().to_u64(), Some(1));
    }

    #[test]
    fn from_and_to_u64_roundtrip() {
        for v in [0u64, 1, 2, 41, 1 << 31, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(Natural::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn addition_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u128::from(u64::MAX), 1),
            (u128::from(u64::MAX), u128::from(u64::MAX)),
            (123_456_789_012_345, 987_654_321_098_765),
        ];
        for (a, b) in cases {
            let sum = &Natural::from_u128(a) + &Natural::from_u128(b);
            assert_eq!(sum.to_u128(), Some(a + b));
        }
    }

    #[test]
    fn subtraction_matches_u128() {
        let cases = [(10u128, 3u128), (u128::from(u64::MAX) + 5, 7), (42, 42)];
        for (a, b) in cases {
            let diff = &Natural::from_u128(a) - &Natural::from_u128(b);
            assert_eq!(diff.to_u128(), Some(a - b));
        }
        assert!(Natural::from_u64(3)
            .checked_sub(&Natural::from_u64(4))
            .is_none());
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases = [
            (0u64, 12345u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (123_456_789, 987_654_321),
        ];
        for (a, b) in cases {
            let prod = &Natural::from_u64(a) * &Natural::from_u64(b);
            assert_eq!(prod.to_u128(), Some(u128::from(a) * u128::from(b)));
        }
    }

    #[test]
    fn division_matches_u128() {
        let cases = [
            (100u128, 7u128),
            (u128::from(u64::MAX) * 13 + 5, 13),
            (1, 2),
            (0, 5),
        ];
        for (a, b) in cases {
            let (q, r) = Natural::from_u128(a).div_rem(&Natural::from_u128(b));
            assert_eq!(q.to_u128(), Some(a / b), "quotient of {a}/{b}");
            assert_eq!(r.to_u128(), Some(a % b), "remainder of {a}/{b}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Natural::from_u64(5).div_rem(&Natural::zero());
    }

    #[test]
    fn gcd_small() {
        let g = Natural::from_u64(48).gcd(&Natural::from_u64(36));
        assert_eq!(g.to_u64(), Some(12));
        assert_eq!(Natural::zero().gcd(&Natural::from_u64(7)).to_u64(), Some(7));
    }

    #[test]
    fn pow_small() {
        assert_eq!(Natural::from_u64(3).pow(0).to_u64(), Some(1));
        assert_eq!(Natural::from_u64(3).pow(5).to_u64(), Some(243));
        assert_eq!(
            Natural::from_u64(2).pow(100).to_string(),
            "1267650600228229401496703205376"
        );
    }

    #[test]
    fn display_large_value() {
        // 100! has a well known decimal representation of 158 digits starting
        // with 93326215443944152681...
        let mut f = Natural::one();
        for i in 1..=100u64 {
            f = &f * &Natural::from_u64(i);
        }
        let text = f.to_string();
        assert_eq!(text.len(), 158);
        assert!(text.starts_with("93326215443944152681"));
    }

    #[test]
    fn decimal_parse_roundtrip() {
        let v = Natural::from_decimal_str("123456789012345678901234567890").unwrap();
        assert_eq!(v.to_string(), "123456789012345678901234567890");
        assert!(Natural::from_decimal_str("12a").is_none());
        assert!(Natural::from_decimal_str("").is_none());
    }

    #[test]
    fn ordering_is_consistent() {
        let a = Natural::from_u128(u128::from(u64::MAX) + 1);
        let b = Natural::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn to_f64_and_ln() {
        assert_eq!(Natural::from_u64(1000).to_f64(), 1000.0);
        let ln = Natural::from_u64(1000).ln();
        assert!((ln - 1000f64.ln()).abs() < 1e-12);
        // ln(2^200) = 200 ln 2
        let big = Natural::from_u64(2).pow(200);
        assert!((big.ln() - 200.0 * std::f64::consts::LN_2).abs() < 1e-9);
        assert_eq!(Natural::zero().ln(), f64::NEG_INFINITY);
    }

    #[test]
    fn sum_and_product_iterators() {
        let values: Vec<Natural> = (1..=10u64).map(Natural::from_u64).collect();
        let sum: Natural = values.iter().sum();
        assert_eq!(sum.to_u64(), Some(55));
        let product: Natural = values.into_iter().product();
        assert_eq!(product.to_u64(), Some(3_628_800));
    }
}
