//! Non-key FD workloads, including the Proposition D.6 family.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, Fact, FdSet, FunctionalDependency, Schema, Value};

/// A generator for databases over `R(A, B, C)` constrained by the single
/// **non-key** FD `R : A → B`.
///
/// Because the FD is not a key, facts agreeing on `A` and `B` do not
/// conflict with each other — only facts agreeing on `A` but differing on
/// `B` do — which produces the richer conflict structures (e.g. star
/// shaped) that separate the FD case from the key case in the paper.
#[derive(Debug, Clone)]
pub struct FdWorkload {
    /// Number of facts to draw.
    pub facts: usize,
    /// Domain size of the determining attribute `A`.
    pub domain_a: usize,
    /// Domain size of the determined attribute `B`.
    pub domain_b: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FdWorkload {
    /// A workload with the given parameters.
    pub fn new(facts: usize, domain_a: usize, domain_b: usize, seed: u64) -> Self {
        FdWorkload {
            facts,
            domain_a,
            domain_b,
            seed,
        }
    }

    /// Generates the database and its FD set.
    ///
    /// # Panics
    /// Panics if `facts == 0` or a domain is empty.
    pub fn generate(&self) -> (Database, FdSet) {
        assert!(self.facts > 0, "at least one fact is required");
        assert!(
            self.domain_a > 0 && self.domain_b > 0,
            "domains must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        schema
            .add_relation("R", &["A", "B", "C"])
            .expect("fresh schema");
        let mut db = Database::with_schema(schema);
        let relation = db.schema().relation_id("R").expect("relation R exists");
        // Draw the whole fact stream first (the RNG consumption matches the
        // old per-insert loop exactly), then bulk-load it: one `extend`
        // interns every constant and defers index invalidation to the end.
        let facts: Vec<Fact> = (0..self.facts)
            .map(|payload| {
                let a = rng.random_range(0..self.domain_a) as i64;
                let b = rng.random_range(0..self.domain_b) as i64;
                Fact::new(
                    relation,
                    vec![Value::int(a), Value::int(b), Value::int(payload as i64)],
                )
            })
            .collect();
        db.extend(facts).expect("schema matches");
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B"])
                .expect("R has attributes A and B"),
        );
        (db, sigma)
    }
}

/// A generator for **large multi-FD inconsistent instances**: several
/// relations, each constrained by two overlapping non-key FDs
/// (`R : A → B` and `R : C → B`, the shape of the paper's running
/// example), with a unique payload attribute so that no FD is a key.
///
/// This is the scaling workload of the `e14` incremental-conflict-index
/// bench: at 5 000–50 000 facts the conflict structure stays sparse
/// (block sizes are governed by `facts / (relations · lhs_domain)`), so
/// the uniform-operations walk terminates in O(conflicting facts) steps
/// while a per-step violation rescan still pays O(|D|) each step.
#[derive(Debug, Clone)]
pub struct MultiFdWorkload {
    /// Total number of facts to draw (spread uniformly over relations).
    pub facts: usize,
    /// Number of relations `R0, …` (cross-relation conflict structure).
    pub relations: usize,
    /// Domain size of each determining attribute (`A` and `C`).
    pub lhs_domain: usize,
    /// Domain size of the determined attribute `B`.
    pub rhs_domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MultiFdWorkload {
    /// A workload with the given parameters.
    pub fn new(
        facts: usize,
        relations: usize,
        lhs_domain: usize,
        rhs_domain: usize,
        seed: u64,
    ) -> Self {
        MultiFdWorkload {
            facts,
            relations,
            lhs_domain,
            rhs_domain,
            seed,
        }
    }

    /// A scaling profile: block sizes stay around 10 facts on average as
    /// `facts` grows, so conflict degree is roughly size-independent.
    pub fn scaling(facts: usize, seed: u64) -> Self {
        MultiFdWorkload::new(facts, 2, (facts / 20).max(1), 3, seed)
    }

    /// Generates the database and its FD set (two non-key FDs per
    /// relation: `A → B` and `C → B`).
    ///
    /// # Panics
    /// Panics if `facts`, `relations` or a domain is zero.
    pub fn generate(&self) -> (Database, FdSet) {
        assert!(self.facts > 0, "at least one fact is required");
        assert!(self.relations > 0, "at least one relation is required");
        assert!(
            self.lhs_domain > 0 && self.rhs_domain > 0,
            "domains must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        let names: Vec<String> = (0..self.relations).map(|r| format!("R{r}")).collect();
        for name in &names {
            schema
                .add_relation(name, &["A", "B", "C", "P"])
                .expect("fresh schema");
        }
        let mut db = Database::with_schema(schema);
        let ids: Vec<_> = names
            .iter()
            .map(|name| db.schema().relation_id(name).expect("relation exists"))
            .collect();
        // Same RNG stream as the old per-insert loop, loaded in one bulk
        // `extend` (single intern pass, one deferred index invalidation) —
        // this is the generator behind the 100k/1M-fact bench databases.
        let facts: Vec<Fact> = (0..self.facts)
            .map(|payload| {
                let a = rng.random_range(0..self.lhs_domain) as i64;
                let b = rng.random_range(0..self.rhs_domain) as i64;
                let c = rng.random_range(0..self.lhs_domain) as i64;
                Fact::new(
                    ids[payload % self.relations],
                    vec![
                        Value::int(a),
                        Value::int(b),
                        Value::int(c),
                        Value::int(payload as i64),
                    ],
                )
            })
            .collect();
        db.extend(facts).expect("schema matches");
        let mut sigma = FdSet::new();
        for name in &names {
            sigma.add(
                FunctionalDependency::from_names(db.schema(), name, &["A"], &["B"])
                    .expect("relation has attributes A and B"),
            );
            sigma.add(
                FunctionalDependency::from_names(db.schema(), name, &["C"], &["B"])
                    .expect("relation has attributes C and B"),
            );
        }
        (db, sigma)
    }
}

/// The family `{D_n}` of Proposition D.6: over `R(A1, A2, A3)` with the FD
/// `R : A1 → A2`, the database
/// `D_n = {R(0,0,0)} ∪ {R(0,1,i) | i ∈ [n−1]}`.
///
/// Every `R(0,1,i)` conflicts with `R(0,0,0)` but not with the others, and
/// the probability that the uniform-operations semantics (with pair
/// removals) keeps `R(0,0,0)` is positive yet at most `1/2^{n−1}` — the
/// witness that plain Monte-Carlo cannot give an FPRAS for FDs with pair
/// operations.
pub fn proposition_d6_database(n: usize) -> (Database, FdSet) {
    assert!(n >= 1, "the family is defined for n ≥ 1");
    let mut schema = Schema::new();
    schema
        .add_relation("R", &["A1", "A2", "A3"])
        .expect("fresh schema");
    let mut db = Database::with_schema(schema);
    db.insert_values("R", [Value::int(0), Value::int(0), Value::int(0)])
        .expect("schema matches");
    for i in 1..n {
        db.insert_values("R", [Value::int(0), Value::int(1), Value::int(i as i64)])
            .expect("schema matches");
    }
    let mut sigma = FdSet::new();
    sigma.add(
        FunctionalDependency::from_names(db.schema(), "R", &["A1"], &["A2"])
            .expect("R has attributes A1 and A2"),
    );
    (db, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{ConflictGraph, FactId, ViolationSet};

    #[test]
    fn fd_workload_is_not_a_key_workload() {
        let (db, sigma) = FdWorkload::new(50, 6, 3, 5).generate();
        assert_eq!(db.len(), 50);
        assert!(!sigma.is_keys(db.schema()));
        assert!(!ViolationSet::of_database(&db, &sigma).is_empty());
    }

    #[test]
    fn proposition_d6_conflict_graph_is_a_star() {
        let (db, sigma) = proposition_d6_database(6);
        assert_eq!(db.len(), 6);
        let cg = ConflictGraph::build(&db, &sigma);
        assert_eq!(cg.degree(FactId::new(0)), 5);
        for i in 1..6 {
            assert_eq!(cg.degree(FactId::new(i)), 1);
        }
        assert!(cg.is_non_trivially_connected());
    }

    #[test]
    fn proposition_d6_base_case_is_consistent() {
        let (db, sigma) = proposition_d6_database(1);
        assert_eq!(db.len(), 1);
        assert!(sigma.satisfied_by_database(&db));
    }

    #[test]
    fn multi_fd_workload_is_inconsistent_non_key_and_cross_relation() {
        let workload = MultiFdWorkload::new(400, 3, 10, 3, 9);
        let (db, sigma) = workload.generate();
        assert_eq!(db.len(), 400);
        assert_eq!(db.schema().relation_count(), 3);
        assert_eq!(sigma.len(), 6);
        assert!(!sigma.is_keys(db.schema()));
        let violations = ViolationSet::of_database(&db, &sigma);
        assert!(!violations.is_empty());
        // Every relation contributes violations (cross-relation structure).
        let facts = violations.conflicting_facts();
        for relation in 0..3 {
            assert!(
                facts
                    .iter()
                    .any(|f| db.fact(*f).relation().index() == relation),
                "relation R{relation} has no violation"
            );
        }
    }

    #[test]
    fn multi_fd_scaling_profile_keeps_conflicts_sparse() {
        let (db, sigma) = MultiFdWorkload::scaling(2_000, 7).generate();
        let violations = ViolationSet::of_database(&db, &sigma);
        assert!(!violations.is_empty());
        // Sparse regime: far fewer violations than the quadratic worst
        // case, so walks terminate quickly.
        assert!(violations.len() < db.len() * 20);
        let (db2, _) = MultiFdWorkload::scaling(2_000, 7).generate();
        for (id, fact) in db.iter() {
            assert_eq!(fact, db2.fact(id));
        }
    }

    #[test]
    fn fd_workload_is_reproducible() {
        let a = FdWorkload::new(30, 4, 2, 77).generate().0;
        let b = FdWorkload::new(30, 4, 2, 77).generate().0;
        for (id, fact) in a.iter() {
            assert_eq!(fact, b.fact(id));
        }
    }
}
