//! Multi-key workloads (arbitrary keys, beyond primary keys).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, FdSet, FunctionalDependency, Schema, Value};

/// A generator for databases over a ternary relation `R(A, B, C)`
/// constrained by **two** keys, `R : A → BC` and `R : B → AC`.
///
/// Two keys on the same relation take the instance outside the primary-key
/// class, which is exactly the regime where the uniform-operations
/// semantics is the only one the paper proves approximable
/// (Theorem 7.1(2)).  Conflicts are induced by drawing the key attributes
/// from small domains.
#[derive(Debug, Clone)]
pub struct MultiKeyWorkload {
    /// Number of facts to draw.
    pub facts: usize,
    /// Domain size of the first key attribute `A`.
    pub domain_a: usize,
    /// Domain size of the second key attribute `B`.
    pub domain_b: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MultiKeyWorkload {
    /// A workload with both key domains of the given size.
    pub fn new(facts: usize, domain: usize, seed: u64) -> Self {
        MultiKeyWorkload {
            facts,
            domain_a: domain,
            domain_b: domain,
            seed,
        }
    }

    /// Generates the database and its two keys.
    ///
    /// # Panics
    /// Panics if `facts == 0` or a domain is empty.
    pub fn generate(&self) -> (Database, FdSet) {
        assert!(self.facts > 0, "at least one fact is required");
        assert!(
            self.domain_a > 0 && self.domain_b > 0,
            "domains must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        schema
            .add_relation("R", &["A", "B", "C"])
            .expect("fresh schema");
        let mut db = Database::with_schema(schema);
        let mut inserted = 0usize;
        let mut payload = 0i64;
        while inserted < self.facts {
            let a = rng.random_range(0..self.domain_a) as i64;
            let b = rng.random_range(0..self.domain_b) as i64;
            // A unique payload keeps the facts distinct even when the key
            // attributes collide (which is what creates violations).
            let before = db.len();
            db.insert_values("R", [Value::int(a), Value::int(b), Value::int(payload)])
                .expect("schema matches");
            payload += 1;
            if db.len() > before {
                inserted += 1;
            }
        }
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["A"], &["B", "C"])
                .expect("valid key"),
        );
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["B"], &["A", "C"])
                .expect("valid key"),
        );
        (db, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::ViolationSet;

    #[test]
    fn generated_constraints_are_keys_but_not_primary_keys() {
        let (db, sigma) = MultiKeyWorkload::new(40, 8, 3).generate();
        assert_eq!(db.len(), 40);
        assert!(sigma.is_keys(db.schema()));
        assert!(!sigma.is_primary_keys(db.schema()));
        assert_eq!(sigma.max_fds_per_relation(), 2);
        // Small domains guarantee some violations.
        assert!(!ViolationSet::of_database(&db, &sigma).is_empty());
    }

    #[test]
    fn generation_is_reproducible() {
        let a = MultiKeyWorkload::new(25, 5, 11).generate().0;
        let b = MultiKeyWorkload::new(25, 5, 11).generate().0;
        assert_eq!(a.len(), b.len());
        for (id, fact) in a.iter() {
            assert_eq!(fact, b.fact(id));
        }
    }

    #[test]
    #[should_panic(expected = "at least one fact")]
    fn empty_workload_panics() {
        let _ = MultiKeyWorkload::new(0, 5, 1).generate();
    }
}
