//! # `ucqa-workload`
//!
//! Seeded synthetic workload generators for the uniform operational CQA
//! experiments.  The paper has no empirical evaluation of its own, so
//! these generators provide the inconsistent databases, constraint sets
//! and queries on which the reproduction validates the theorems and runs
//! its scaling studies (see `EXPERIMENTS.md`):
//!
//! * [`blocks`] — primary-key workloads parameterised by the block-size
//!   profile (the regime of Theorems 5.1(2), 6.1(2), E.1(2), E.8(2)).
//! * [`keys`] — multi-key workloads (the regime of Theorem 7.1(2), beyond
//!   primary keys).
//! * [`fds`] — non-key FD workloads, including the `D_n` family of
//!   Proposition D.6 (the regime of Theorem 7.5 and of the negative
//!   results).
//! * [`graphs`] — random graphs and graph-derived databases for the
//!   reduction experiments.
//! * [`queries`] — query/candidate generators matched to the workloads.
//! * [`skew`] — Zipf-skewed multi-join workloads (one hot anchor value
//!   per relation plus a tail of singletons), for the cost-based join
//!   planning experiments.
//! * [`stream`] — seeded insert/retract tick streams with configurable
//!   churn and key overlap, for the sliding-window experiments.
//!
//! Every generator takes an explicit seed (or `rand::Rng`) so experiments
//! are reproducible.
//!
//! ## Choosing a workload
//!
//! The generators are matched to the paper's constraint classes, which in
//! turn gate which FPRAS the `ucqa-core` drivers will accept:
//!
//! | Generator | Constraint class | Exercises |
//! |---|---|---|
//! | [`BlockWorkload`] | primary keys | all three uniform semantics; block-profile counting (Lemmas 5.2/C.1/E.2) |
//! | [`MultiKeyWorkload`] | keys, not primary | `M^uo` with pair removals (Theorem 7.1(2)) |
//! | [`FdWorkload`] / [`MultiFdWorkload`] | non-key FDs | `M^{uo,1}` (Theorem 7.5); the conflict-index and batched-estimation scaling benches (e14–e16) |
//! | [`proposition_d6_database`] | non-key FD, star conflicts | the Proposition D.6 negative result; the skewed-bank retirement study of e16 |
//! | [`SkewedJoinWorkload`] | non-key FDs, skewed postings | cost-based vs coverage-greedy join planning and subtree-shared bank compilation (e22) |
//! | [`graphs`] | reduction databases | the hardness experiments (E10/E11) |
//!
//! [`MultiFdWorkload::scaling`] keeps the conflict degree roughly
//! size-independent as the fact count grows, so walk cost scales with the
//! conflict structure rather than quadratically — this is the standard
//! scaling workload of the `BENCH_e14`–`BENCH_e17` reports.  The
//! [`queries`] module provides matched query generators
//! ([`queries::block_lookup_query`], [`queries::fact_membership_query`],
//! multi-query banks via [`queries::fact_membership_query_bank`], and
//! banks of CQs sharing atom prefixes via
//! [`queries::overlapping_join_bank`] — the shared-trie compilation
//! workload of e17) whose candidates are guaranteed answers on the full
//! database, so target probabilities are non-zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod fds;
pub mod graphs;
pub mod keys;
pub mod queries;
pub mod skew;
pub mod stream;

pub use blocks::BlockWorkload;
pub use fds::{proposition_d6_database, FdWorkload, MultiFdWorkload};
pub use keys::MultiKeyWorkload;
pub use skew::SkewedJoinWorkload;
pub use stream::StreamWorkload;
