//! # `ucqa-workload`
//!
//! Seeded synthetic workload generators for the uniform operational CQA
//! experiments.  The paper has no empirical evaluation of its own, so
//! these generators provide the inconsistent databases, constraint sets
//! and queries on which the reproduction validates the theorems and runs
//! its scaling studies (see `EXPERIMENTS.md`):
//!
//! * [`blocks`] — primary-key workloads parameterised by the block-size
//!   profile (the regime of Theorems 5.1(2), 6.1(2), E.1(2), E.8(2)).
//! * [`keys`] — multi-key workloads (the regime of Theorem 7.1(2), beyond
//!   primary keys).
//! * [`fds`] — non-key FD workloads, including the `D_n` family of
//!   Proposition D.6 (the regime of Theorem 7.5 and of the negative
//!   results).
//! * [`graphs`] — random graphs and graph-derived databases for the
//!   reduction experiments.
//! * [`queries`] — query/candidate generators matched to the workloads.
//!
//! Every generator takes an explicit seed (or `rand::Rng`) so experiments
//! are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod fds;
pub mod graphs;
pub mod keys;
pub mod queries;

pub use blocks::BlockWorkload;
pub use fds::{proposition_d6_database, FdWorkload, MultiFdWorkload};
pub use keys::MultiKeyWorkload;
