//! Query and candidate-tuple generators matched to the workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, FactId, Value};
use ucqa_query::{Atom, ConjunctiveQuery, QueryError, Term, Variable};

/// For the block workloads (`R(K, V)`): the unary query
/// `Ans(x) :- R(k, x)` for a randomly chosen key value `k`, together with a
/// candidate tuple that is an answer on the full database (so the target
/// probability is non-zero).
///
/// This mirrors the query of Examples B.3 / C.3.
pub fn block_lookup_query(
    db: &Database,
    seed: u64,
) -> Result<(ConjunctiveQuery, Vec<Value>), QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let relation = db.schema().relation_id("R")?;
    let fact_id = FactId::new(rng.random_range(0..db.len()));
    let fact = db.fact(fact_id);
    let key = fact.values()[0].clone();
    let answer = fact.values()[1].clone();
    let query = ConjunctiveQuery::new(
        db.schema(),
        vec![Variable::new("x")],
        vec![Atom::new(relation, vec![Term::Const(key), Term::var("x")])],
    )?;
    Ok((query, vec![answer]))
}

/// A Boolean atomic query asking for one specific fact of the database
/// (chosen by seed): `Ans() :- R(c₁, …, cₙ)`.
///
/// The answer probability is then exactly the probability that the chosen
/// fact survives repairing, which is the quantity the lower-bound lemmas
/// reason about.
pub fn fact_membership_query(db: &Database, seed: u64) -> Result<ConjunctiveQuery, QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fact_id = FactId::new(rng.random_range(0..db.len()));
    let fact = db.fact(fact_id);
    let terms = fact.values().iter().cloned().map(Term::Const).collect();
    ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)])
}

/// A bank of `k` Boolean atomic fact-membership queries over **distinct**
/// facts (chosen by seed): the multi-query workload of the batched FPRAS
/// drivers, where every sampled repair is checked against all `k`
/// lineages at once.
///
/// Distinct facts keep the per-query answer probabilities independent and
/// non-trivially different; when `k` exceeds the database size the bank
/// wraps around and duplicates (which the lineage bank dedups anyway).
///
/// # Panics
/// Panics if `k > 0` and the database is empty.
pub fn fact_membership_query_bank(
    db: &Database,
    k: usize,
    seed: u64,
) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    assert!(
        k == 0 || !db.is_empty(),
        "a non-empty query bank requires at least one fact"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..db.len()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    (0..k)
        .map(|i| {
            let fact = db.fact(FactId::new(order[i % order.len()]));
            let terms = fact.values().iter().cloned().map(Term::Const).collect();
            ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)])
        })
        .collect()
}

/// A Boolean "join" query over the block workload schema `R(K, V)`:
/// `Ans() :- R(k₁, x), R(k₂, x)` for two randomly chosen key values — it is
/// entailed by a repair iff the two chosen blocks keep facts sharing a `V`
/// value, exercising multi-atom queries in the estimators.
pub fn block_join_query(db: &Database, seed: u64) -> Result<ConjunctiveQuery, QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let relation = db.schema().relation_id("R")?;
    let first = db.fact(FactId::new(rng.random_range(0..db.len())));
    let second = db.fact(FactId::new(rng.random_range(0..db.len())));
    ConjunctiveQuery::boolean(
        db.schema(),
        vec![
            Atom::new(
                relation,
                vec![Term::Const(first.values()[0].clone()), Term::var("x")],
            ),
            Atom::new(
                relation,
                vec![Term::Const(second.values()[0].clone()), Term::var("x")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockWorkload;
    use ucqa_query::QueryEvaluator;

    #[test]
    fn block_lookup_query_has_a_positive_answer_on_the_full_database() {
        let (db, _) = BlockWorkload::uniform(6, 3, 1).generate();
        let (query, candidate) = block_lookup_query(&db, 42).unwrap();
        assert_eq!(query.answer_vars().len(), 1);
        let evaluator = QueryEvaluator::new(query);
        assert!(evaluator
            .has_answer(&db, &db.all_facts(), &candidate)
            .unwrap());
    }

    #[test]
    fn fact_membership_query_is_boolean_and_entailed() {
        let (db, _) = BlockWorkload::uniform(4, 2, 2).generate();
        let query = fact_membership_query(&db, 7).unwrap();
        assert!(query.is_boolean());
        assert!(query.is_atomic());
        let evaluator = QueryEvaluator::new(query);
        assert!(evaluator.entails(&db, &db.all_facts()));
    }

    #[test]
    fn query_bank_uses_distinct_facts_and_wraps_around() {
        let (db, _) = BlockWorkload::uniform(4, 2, 2).generate();
        let bank = fact_membership_query_bank(&db, 5, 3).unwrap();
        assert_eq!(bank.len(), 5);
        for query in &bank {
            assert!(query.is_boolean());
            assert!(query.is_atomic());
            let evaluator = QueryEvaluator::new(query.clone());
            assert!(evaluator.entails(&db, &db.all_facts()));
        }
        // The first min(k, |D|) queries target distinct facts.
        let distinct: std::collections::BTreeSet<String> =
            bank.iter().take(4).map(|q| format!("{q:?}")).collect();
        assert_eq!(distinct.len(), 4);
        // Deterministic in the seed.
        let again = fact_membership_query_bank(&db, 5, 3).unwrap();
        assert_eq!(bank, again);
        // Oversized banks wrap around instead of failing.
        let wrapped = fact_membership_query_bank(&db, db.len() + 2, 3).unwrap();
        assert_eq!(wrapped.len(), db.len() + 2);
    }

    #[test]
    fn block_join_query_has_two_atoms() {
        let (db, _) = BlockWorkload::uniform(4, 2, 3).generate();
        let query = block_join_query(&db, 9).unwrap();
        assert_eq!(query.atom_count(), 2);
        assert!(query.is_boolean());
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        let (db, _) = BlockWorkload::uniform(6, 3, 1).generate();
        let a = block_lookup_query(&db, 5).unwrap();
        let b = block_lookup_query(&db, 5).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }
}
