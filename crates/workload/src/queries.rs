//! Query and candidate-tuple generators matched to the workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, FactId, Value};
use ucqa_query::{Atom, ConjunctiveQuery, QueryError, Term, Variable};

/// For the block workloads (`R(K, V)`): the unary query
/// `Ans(x) :- R(k, x)` for a randomly chosen key value `k`, together with a
/// candidate tuple that is an answer on the full database (so the target
/// probability is non-zero).
///
/// This mirrors the query of Examples B.3 / C.3.
pub fn block_lookup_query(
    db: &Database,
    seed: u64,
) -> Result<(ConjunctiveQuery, Vec<Value>), QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let relation = db.schema().relation_id("R")?;
    let fact_id = FactId::new(rng.random_range(0..db.len()));
    let fact = db.fact(fact_id);
    let key = fact.values()[0].clone();
    let answer = fact.values()[1].clone();
    let query = ConjunctiveQuery::new(
        db.schema(),
        vec![Variable::new("x")],
        vec![Atom::new(relation, vec![Term::Const(key), Term::var("x")])],
    )?;
    Ok((query, vec![answer]))
}

/// A Boolean atomic query asking for one specific fact of the database
/// (chosen by seed): `Ans() :- R(c₁, …, cₙ)`.
///
/// The answer probability is then exactly the probability that the chosen
/// fact survives repairing, which is the quantity the lower-bound lemmas
/// reason about.
pub fn fact_membership_query(db: &Database, seed: u64) -> Result<ConjunctiveQuery, QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fact_id = FactId::new(rng.random_range(0..db.len()));
    let fact = db.fact(fact_id);
    let terms = fact.values().iter().cloned().map(Term::Const).collect();
    ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)])
}

/// A bank of `k` Boolean atomic fact-membership queries over **distinct**
/// facts (chosen by seed): the multi-query workload of the batched FPRAS
/// drivers, where every sampled repair is checked against all `k`
/// lineages at once.
///
/// Distinct facts keep the per-query answer probabilities independent and
/// non-trivially different; when `k` exceeds the database size the bank
/// wraps around and duplicates (which the lineage bank dedups anyway).
///
/// # Panics
/// Panics if `k > 0` and the database is empty.
pub fn fact_membership_query_bank(
    db: &Database,
    k: usize,
    seed: u64,
) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    assert!(
        k == 0 || !db.is_empty(),
        "a non-empty query bank requires at least one fact"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..db.len()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    (0..k)
        .map(|i| {
            let fact = db.fact(FactId::new(order[i % order.len()]));
            let terms = fact.values().iter().cloned().map(Term::Const).collect();
            ConjunctiveQuery::boolean(db.schema(), vec![Atom::new(fact.relation(), terms)])
        })
        .collect()
}

/// A bank of `k` Boolean **overlapping join** queries: every query shares
/// the same `prefix_depth`-atom prefix and appends one diverging atom, so
/// the bank is exactly the workload the shared-trie bank compilation
/// (`ucqa_query::LineageBank::compile`) factors into ~one enumeration
/// pass.  This is the workload of the `e17` plan-enumeration bench and of
/// the planner property tests.
///
/// Construction (works over any schema whose relations have arity ≥ 2,
/// e.g. `MultiFdWorkload`'s `R*(A, B, C, P)` or the block schema
/// `R(K, V)`): a join value `b` is drawn from position 1 of a seed-chosen
/// fact, and every atom has the shape `Rᵢ(aᵢ, v, …fresh vars…)` — a
/// constant anchor at position 0 (taken from a database fact with `B = b`)
/// and the shared join variable `v` at position 1.  All atoms carry
/// exactly one constant, so the greedy bound-coverage planner keeps the
/// written order (ties break towards earlier atoms) and the shared prefix
/// survives planning verbatim.  Every query is entailed by the full
/// database via `v = b` and its anchor facts, so target probabilities are
/// non-zero.
///
/// # Panics
/// Panics if `k > 0` and the database is empty, or if no fact belongs to
/// a relation of arity ≥ 2 (there is nothing to join on).
pub fn overlapping_join_bank(
    db: &Database,
    k: usize,
    prefix_depth: usize,
    seed: u64,
) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    assert!(
        k == 0 || !db.is_empty(),
        "a non-empty query bank requires at least one fact"
    );
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Joinable facts: relations of arity ≥ 2 (position 1 is the join
    // position).
    let joinable: Vec<FactId> = db
        .fact_ids()
        .filter(|&id| db.fact(id).values().len() >= 2)
        .collect();
    assert!(
        !joinable.is_empty(),
        "overlapping joins require facts over relations of arity >= 2"
    );
    // The join value: position 1 of a seed-chosen fact.
    let pivot = db.fact(joinable[rng.random_range(0..joinable.len())]);
    let join_value = pivot.values()[1].clone();
    // Anchor pool: facts agreeing with the pivot at position 1, shuffled.
    let mut anchors: Vec<FactId> = joinable
        .iter()
        .copied()
        .filter(|&id| db.fact(id).values()[1] == join_value)
        .collect();
    use rand::seq::SliceRandom;
    anchors.shuffle(&mut rng);
    let mut fresh = 0usize;
    let mut anchored_atom = |anchor: FactId| {
        let fact = db.fact(anchor);
        let terms: Vec<Term> = fact
            .values()
            .iter()
            .enumerate()
            .map(|(position, value)| match position {
                0 => Term::Const(value.clone()),
                1 => Term::var("v"),
                _ => {
                    fresh += 1;
                    Term::var(format!("w{fresh}"))
                }
            })
            .collect();
        Atom::new(fact.relation(), terms)
    };
    let prefix: Vec<Atom> = (0..prefix_depth)
        .map(|j| anchored_atom(anchors[j % anchors.len()]))
        .collect();
    (0..k)
        .map(|i| {
            let mut atoms = prefix.clone();
            atoms.push(anchored_atom(anchors[(prefix_depth + i) % anchors.len()]));
            ConjunctiveQuery::boolean(db.schema(), atoms)
        })
        .collect()
}

/// A Boolean "join" query over the block workload schema `R(K, V)`:
/// `Ans() :- R(k₁, x), R(k₂, x)` for two randomly chosen key values — it is
/// entailed by a repair iff the two chosen blocks keep facts sharing a `V`
/// value, exercising multi-atom queries in the estimators.
pub fn block_join_query(db: &Database, seed: u64) -> Result<ConjunctiveQuery, QueryError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let relation = db.schema().relation_id("R")?;
    let first = db.fact(FactId::new(rng.random_range(0..db.len())));
    let second = db.fact(FactId::new(rng.random_range(0..db.len())));
    ConjunctiveQuery::boolean(
        db.schema(),
        vec![
            Atom::new(
                relation,
                vec![Term::Const(first.values()[0].clone()), Term::var("x")],
            ),
            Atom::new(
                relation,
                vec![Term::Const(second.values()[0].clone()), Term::var("x")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockWorkload;
    use ucqa_query::QueryEvaluator;

    #[test]
    fn block_lookup_query_has_a_positive_answer_on_the_full_database() {
        let (db, _) = BlockWorkload::uniform(6, 3, 1).generate();
        let (query, candidate) = block_lookup_query(&db, 42).unwrap();
        assert_eq!(query.answer_vars().len(), 1);
        let evaluator = QueryEvaluator::new(query);
        assert!(evaluator
            .has_answer(&db, &db.all_facts(), &candidate)
            .unwrap());
    }

    #[test]
    fn fact_membership_query_is_boolean_and_entailed() {
        let (db, _) = BlockWorkload::uniform(4, 2, 2).generate();
        let query = fact_membership_query(&db, 7).unwrap();
        assert!(query.is_boolean());
        assert!(query.is_atomic());
        let evaluator = QueryEvaluator::new(query);
        assert!(evaluator.entails(&db, &db.all_facts()));
    }

    #[test]
    fn query_bank_uses_distinct_facts_and_wraps_around() {
        let (db, _) = BlockWorkload::uniform(4, 2, 2).generate();
        let bank = fact_membership_query_bank(&db, 5, 3).unwrap();
        assert_eq!(bank.len(), 5);
        for query in &bank {
            assert!(query.is_boolean());
            assert!(query.is_atomic());
            let evaluator = QueryEvaluator::new(query.clone());
            assert!(evaluator.entails(&db, &db.all_facts()));
        }
        // The first min(k, |D|) queries target distinct facts.
        let distinct: std::collections::BTreeSet<String> =
            bank.iter().take(4).map(|q| format!("{q:?}")).collect();
        assert_eq!(distinct.len(), 4);
        // Deterministic in the seed.
        let again = fact_membership_query_bank(&db, 5, 3).unwrap();
        assert_eq!(bank, again);
        // Oversized banks wrap around instead of failing.
        let wrapped = fact_membership_query_bank(&db, db.len() + 2, 3).unwrap();
        assert_eq!(wrapped.len(), db.len() + 2);
    }

    #[test]
    fn overlapping_join_bank_shares_prefixes_and_is_entailed() {
        let (db, _) = crate::MultiFdWorkload::new(200, 2, 10, 3, 11).generate();
        let bank = overlapping_join_bank(&db, 6, 2, 4).unwrap();
        assert_eq!(bank.len(), 6);
        let prefix = &bank[0].atoms()[..2];
        for query in &bank {
            assert!(query.is_boolean());
            assert_eq!(query.atom_count(), 3);
            // Every query literally shares the two prefix atoms.
            assert_eq!(&query.atoms()[..2], prefix);
            // Guaranteed entailed on the full database.
            let evaluator = QueryEvaluator::new(query.clone());
            assert!(evaluator.entails(&db, &db.all_facts()));
            // The greedy planner keeps the written (prefix-first) order,
            // which is the trie-sharing invariant.
            let order: Vec<usize> = evaluator.plan().atom_order().collect();
            assert_eq!(order, vec![0, 1, 2]);
        }
        // Deterministic in the seed.
        assert_eq!(overlapping_join_bank(&db, 6, 2, 4).unwrap(), bank);
        // Works over the arity-2 block schema too, and for k = 0.
        let (blocks, _) = BlockWorkload::uniform(4, 3, 2).generate();
        let small = overlapping_join_bank(&blocks, 3, 1, 9).unwrap();
        assert_eq!(small.len(), 3);
        for query in &small {
            assert!(QueryEvaluator::new(query.clone()).entails(&blocks, &blocks.all_facts()));
        }
        assert!(overlapping_join_bank(&db, 0, 2, 4).unwrap().is_empty());
    }

    #[test]
    fn block_join_query_has_two_atoms() {
        let (db, _) = BlockWorkload::uniform(4, 2, 3).generate();
        let query = block_join_query(&db, 9).unwrap();
        assert_eq!(query.atom_count(), 2);
        assert!(query.is_boolean());
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        let (db, _) = BlockWorkload::uniform(6, 3, 1).generate();
        let a = block_lookup_query(&db, 5).unwrap();
        let b = block_lookup_query(&db, 5).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }
}
