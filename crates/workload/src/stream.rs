//! Seeded fact-stream generators for the sliding-window experiments.
//!
//! [`StreamWorkload`] emits per-tick batches of `(inserts, retracts)`
//! over the [`BlockWorkload`](crate::BlockWorkload) schema `R(K, V)`
//! with primary key `R : K → V` — the one constraint class every
//! uniform semantics of the paper supports, so the same stream can
//! drive all six generator specs.  Inserts carry a monotone value
//! counter (never a duplicate); the **overlap** knob sets the
//! probability that an insert reuses the key of a currently-live fact
//! (growing an existing block, i.e. churning the conflict structure)
//! instead of drawing a fresh uniform key.  Retractions pick uniformly,
//! without replacement, among the live facts.
//!
//! The generator is `Clone` and fully determined by its seed and call
//! sequence, so a property test can replay the identical stream into a
//! windowed pipeline and a from-scratch oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, Fact, FactId, FdSet, FunctionalDependency, Schema, Value};

/// A seeded generator of insert/retract tick batches over `R(K, V)`
/// with primary key `K → V`.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    /// Key domain size (number of potential blocks).
    pub keys: usize,
    /// Inserts emitted per tick.
    pub inserts_per_tick: usize,
    /// Retractions emitted per tick (capped at the live fact count).
    pub retracts_per_tick: usize,
    /// Probability in `[0, 1]` that an insert reuses a live fact's key.
    pub overlap: f64,
    rng: StdRng,
    next_value: i64,
}

impl StreamWorkload {
    /// Creates a stream generator.
    ///
    /// # Panics
    /// Panics if `keys == 0` or `overlap` is outside `[0, 1]`.
    pub fn new(
        keys: usize,
        inserts_per_tick: usize,
        retracts_per_tick: usize,
        overlap: f64,
        seed: u64,
    ) -> Self {
        assert!(keys > 0, "at least one key is required");
        assert!(
            (0.0..=1.0).contains(&overlap),
            "overlap is a probability, got {overlap}"
        );
        StreamWorkload {
            keys,
            inserts_per_tick,
            retracts_per_tick,
            overlap,
            rng: StdRng::seed_from_u64(seed),
            next_value: 0,
        }
    }

    /// Generates the initial database (uniform keys, fresh values) and
    /// its primary key.  Consumes the generator's RNG stream, so the
    /// initial state and the subsequent ticks form one reproducible
    /// sequence.
    pub fn initial(&mut self, facts: usize) -> (Database, FdSet) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).expect("fresh schema");
        let mut db = Database::with_schema(schema);
        let relation = db.schema().relation_id("R").expect("relation R exists");
        let batch: Vec<Fact> = (0..facts).map(|_| self.fresh_fact(relation)).collect();
        db.extend(batch).expect("schema matches");
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["K"], &["V"])
                .expect("R has attributes K and V"),
        );
        (db, sigma)
    }

    fn fresh_fact(&mut self, relation: ucqa_db::RelationId) -> Fact {
        let key = self.rng.random_range(0..self.keys) as i64;
        let value = self.next_value;
        self.next_value += 1;
        Fact::new(relation, vec![Value::int(key), Value::int(value)])
    }

    /// Emits one tick's `(inserts, retracts)` against the current
    /// database state.  Retractions are uniform without replacement
    /// among the live facts (fewer when fewer are live); each insert
    /// reuses a live key with probability [`StreamWorkload::overlap`]
    /// and carries a fresh value, so inserts are never duplicates.
    pub fn tick(&mut self, db: &Database) -> (Vec<Fact>, Vec<Fact>) {
        let relation = db.schema().relation_id("R").expect("stream schema R");
        let live: Vec<FactId> = db.fact_ids().collect();
        let mut pool = live.clone();
        let mut retracts = Vec::new();
        for _ in 0..self.retracts_per_tick.min(pool.len()) {
            let at = self.rng.random_range(0..pool.len());
            let id = pool.swap_remove(at);
            retracts.push(db.fact(id));
        }
        let mut inserts = Vec::new();
        for _ in 0..self.inserts_per_tick {
            let reuse = !live.is_empty() && self.rng.random_bool(self.overlap);
            let fact = if reuse {
                let of = live[self.rng.random_range(0..live.len())];
                let key = db.fact(of).values()[0].clone();
                let value = self.next_value;
                self.next_value += 1;
                Fact::new(relation, vec![key, Value::int(value)])
            } else {
                self.fresh_fact(relation)
            };
            inserts.push(fact);
        }
        (inserts, retracts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_reproducible_via_clone() {
        let mut a = StreamWorkload::new(8, 5, 3, 0.5, 42);
        let mut b = a.clone();
        let (db_a, _) = a.initial(20);
        let (db_b, _) = b.initial(20);
        assert_eq!(db_a.len(), db_b.len());
        let (ins_a, del_a) = a.tick(&db_a);
        let (ins_b, del_b) = b.tick(&db_b);
        assert_eq!(ins_a, ins_b);
        assert_eq!(del_a, del_b);
    }

    #[test]
    fn retracts_are_live_and_distinct() {
        let mut w = StreamWorkload::new(4, 0, 6, 0.0, 7);
        let (db, _) = w.initial(10);
        let (inserts, retracts) = w.tick(&db);
        assert!(inserts.is_empty());
        assert_eq!(retracts.len(), 6);
        let distinct: HashSet<_> = retracts.iter().map(|f| f.values().to_vec()).collect();
        assert_eq!(distinct.len(), 6, "no fact retracted twice");
        assert!(retracts.iter().all(|f| db.contains(f)));
        // More retractions than live facts: capped, not panicking.
        let mut starved = StreamWorkload::new(4, 0, 100, 0.0, 7);
        let (small, _) = starved.initial(3);
        let (_, capped) = starved.tick(&small);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn full_overlap_only_reuses_live_keys() {
        let mut w = StreamWorkload::new(1_000_000, 10, 0, 1.0, 11);
        let (db, _) = w.initial(5);
        let live_keys: HashSet<Value> = db.iter().map(|(_, f)| f.values()[0].clone()).collect();
        let (inserts, _) = w.tick(&db);
        assert_eq!(inserts.len(), 10);
        assert!(inserts.iter().all(|f| live_keys.contains(&f.values()[0])));
        // Values stay fresh: no insert duplicates an existing fact.
        assert!(inserts.iter().all(|f| !db.contains(f)));
    }
}
