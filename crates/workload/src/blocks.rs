//! Primary-key (block) workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, Fact, FdSet, FunctionalDependency, Schema, Value};

/// A generator for inconsistent databases over a single binary relation
/// `R(K, V)` constrained by the primary key `R : K → V`.
///
/// The inconsistency structure of such a database is fully described by its
/// block-size profile (facts sharing a key value form a block); the
/// generator draws each block size uniformly from
/// `[min_block_size, max_block_size]` and fills attribute `V` with distinct
/// values inside a block, so a block of size `m` contributes `m·(m−1)/2`
/// violations.
#[derive(Debug, Clone)]
pub struct BlockWorkload {
    /// Number of blocks (distinct key values).
    pub blocks: usize,
    /// Minimum block size (≥ 1).
    pub min_block_size: usize,
    /// Maximum block size (≥ `min_block_size`).
    pub max_block_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BlockWorkload {
    /// A workload with uniformly sized blocks.
    pub fn uniform(blocks: usize, block_size: usize, seed: u64) -> Self {
        BlockWorkload {
            blocks,
            min_block_size: block_size,
            max_block_size: block_size,
            seed,
        }
    }

    /// Generates the database and its primary key.
    ///
    /// # Panics
    /// Panics if the parameters are degenerate (`blocks == 0`,
    /// `min_block_size == 0`, or `min > max`).
    pub fn generate(&self) -> (Database, FdSet) {
        assert!(self.blocks > 0, "at least one block is required");
        assert!(self.min_block_size > 0, "blocks must be non-empty");
        assert!(
            self.min_block_size <= self.max_block_size,
            "min_block_size must not exceed max_block_size"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).expect("fresh schema");
        let mut db = Database::with_schema(schema);
        let relation = db.schema().relation_id("R").expect("relation R exists");
        // Same RNG stream as the old per-insert loop; one bulk `extend`
        // interns the domain and defers index invalidation to the end.
        let mut facts = Vec::new();
        for block in 0..self.blocks {
            let size = rng.random_range(self.min_block_size..=self.max_block_size);
            for row in 0..size {
                facts.push(Fact::new(
                    relation,
                    vec![Value::int(block as i64), Value::int(row as i64)],
                ));
            }
        }
        db.extend(facts).expect("schema matches");
        let mut sigma = FdSet::new();
        sigma.add(
            FunctionalDependency::from_names(db.schema(), "R", &["K"], &["V"])
                .expect("R has attributes K and V"),
        );
        (db, sigma)
    }

    /// The expected number of facts of the workload (exact when
    /// `min_block_size == max_block_size`).
    pub fn expected_facts(&self) -> usize {
        self.blocks * (self.min_block_size + self.max_block_size) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::{BlockPartition, ViolationSet};

    #[test]
    fn uniform_workload_has_expected_shape() {
        let workload = BlockWorkload::uniform(10, 3, 7);
        let (db, sigma) = workload.generate();
        assert_eq!(db.len(), 30);
        assert!(sigma.is_primary_keys(db.schema()));
        let partition = BlockPartition::compute(&db, &sigma).unwrap();
        assert_eq!(partition.blocks().len(), 10);
        assert!(partition.blocks().iter().all(|b| b.len() == 3));
        // Each block of size 3 has 3 violating pairs.
        assert_eq!(ViolationSet::of_database(&db, &sigma).len(), 30);
    }

    #[test]
    fn variable_block_sizes_stay_in_range_and_are_reproducible() {
        let workload = BlockWorkload {
            blocks: 20,
            min_block_size: 1,
            max_block_size: 5,
            seed: 99,
        };
        let (db1, _) = workload.generate();
        let (db2, sigma) = workload.generate();
        assert_eq!(db1.len(), db2.len());
        let partition = BlockPartition::compute(&db2, &sigma).unwrap();
        assert!(partition
            .blocks()
            .iter()
            .all(|b| (1..=5).contains(&b.len())));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn degenerate_parameters_panic() {
        let _ = BlockWorkload::uniform(0, 3, 1).generate();
    }
}
