//! Random graph generators for the reduction experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_graphs::UndirectedGraph;

/// Draws an Erdős–Rényi graph `G(n, p)`.
pub fn erdos_renyi(nodes: usize, edge_probability: f64, seed: u64) -> UndirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = UndirectedGraph::new(nodes);
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if rng.random_bool(edge_probability.clamp(0.0, 1.0)) {
                graph.add_edge(u, v);
            }
        }
    }
    graph
}

/// Draws a *connected* graph of maximum degree at most `max_degree`: a
/// Hamiltonian path (guaranteeing connectivity and non-trivial
/// connectivity) plus random extra edges that respect the degree bound.
///
/// This is the input shape required by the Proposition 5.5 experiment
/// (non-trivially connected, bounded degree).
///
/// # Panics
/// Panics if `nodes < 2` or `max_degree < 2`.
pub fn connected_bounded_degree(nodes: usize, max_degree: usize, seed: u64) -> UndirectedGraph {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(max_degree >= 2, "a path already needs degree 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = UndirectedGraph::new(nodes);
    for u in 1..nodes {
        graph.add_edge(u - 1, u);
    }
    // Try to add extra edges without exceeding the degree bound.
    let attempts = nodes * max_degree;
    for _ in 0..attempts {
        let u = rng.random_range(0..nodes);
        let v = rng.random_range(0..nodes);
        if u != v
            && !graph.has_edge(u, v)
            && graph.degree(u) < max_degree
            && graph.degree(v) < max_degree
        {
            graph.add_edge(u, v);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).edge_count(), 45);
        let g = erdos_renyi(20, 0.3, 5);
        assert!(g.edge_count() > 20 && g.edge_count() < 100);
        // Reproducible.
        assert_eq!(erdos_renyi(20, 0.3, 5).edges(), g.edges());
    }

    #[test]
    fn connected_bounded_degree_respects_its_contract() {
        for seed in 0..5u64 {
            let g = connected_bounded_degree(30, 4, seed);
            assert!(g.is_non_trivially_connected());
            assert!(g.max_degree() <= 4);
            assert!(g.edge_count() >= 29);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_graph_rejected() {
        let _ = connected_bounded_degree(1, 3, 0);
    }
}
