//! Zipf-skewed multi-join workloads: one hot anchor value per relation.
//!
//! The cost-based join planner (`ucqa_query::plan::JoinPlan::build_costed`)
//! only separates from the coverage-greedy baseline when posting-list
//! lengths are skewed: on uniform data every constant anchor is equally
//! selective and any order is as good as any other.  [`SkewedJoinWorkload`]
//! generates that separation deliberately — in every relation a single
//! **hot** anchor value absorbs a configurable share of the facts and the
//! remaining facts get globally unique **tail** values (the extreme-Zipf
//! profile: one heavy head, a tail of singletons).  A lookup on the hot
//! anchor therefore scans a posting of thousands of facts while a tail
//! lookup touches exactly one, which is the regime the `e22` planning
//! bench gates on.
//!
//! Two query generators are matched to the workload:
//!
//! * [`hot_tail_join_queries`] — two-atom joins written hot-first, so the
//!   coverage-greedy planner (which ties towards written order) enumerates
//!   the hot posting while the cost-based planner flips to the singleton
//!   tail anchor.
//! * [`hot_suffix_bank`] — a bank whose queries share an expensive two-hot
//!   join prefix in written order and append one distinct tail atom.
//!   Structural compilation shares the prefix via the scan trie; costed
//!   plans move the cheap distinct atom first, and only the bank
//!   compiler's common-*subtree* factoring keeps the hot join enumerated
//!   once instead of once per query.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucqa_db::{Database, Fact, FdSet, FunctionalDependency, RelationId, Schema, Value};
use ucqa_query::{Atom, ConjunctiveQuery, QueryError, Term};

/// A generator for skewed multi-relation join workloads over relations
/// `R0, …` with schema `(A, B, C, P)`:
///
/// * `A` — the **anchor** column: with probability `hot_percent / 100` a
///   fact carries its relation's single hot value
///   ([`SkewedJoinWorkload::hot_value`]), otherwise a globally unique
///   tail value.
/// * `B` — the **join** column, uniform over `join_domain` values.
/// * `C` — the **conflict** column; the per-relation non-key FD `C → B`
///   makes the instance inconsistent with block sizes governed by
///   `facts / (relations · conflict_domain)`.
/// * `P` — a unique payload, so no FD is a key.
///
/// Skew lives entirely in `A`, which queries anchor on; conflicts live in
/// `(C, B)`, which they do not — so planning effects (posting-run skew)
/// and repair effects (conflict structure) can be dialed independently.
#[derive(Debug, Clone)]
pub struct SkewedJoinWorkload {
    /// Total number of facts (spread round-robin over relations).
    pub facts: usize,
    /// Number of relations `R0, …` (at least 2 for the join generators).
    pub relations: usize,
    /// Percentage (0–100) of each relation's facts anchored on its hot
    /// value; the rest get unique tail values.
    pub hot_percent: u32,
    /// Domain size of the join column `B`.
    pub join_domain: usize,
    /// Domain size of the FD-constrained column `C`.
    pub conflict_domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SkewedJoinWorkload {
    /// A workload with the given parameters.
    pub fn new(
        facts: usize,
        relations: usize,
        hot_percent: u32,
        join_domain: usize,
        conflict_domain: usize,
        seed: u64,
    ) -> Self {
        SkewedJoinWorkload {
            facts,
            relations,
            hot_percent,
            join_domain,
            conflict_domain,
            seed,
        }
    }

    /// The scaling profile of the `e22` planning bench: two relations,
    /// half of each relation's facts on its hot anchor, a join domain
    /// that grows with the fact count (so hot⋈hot match counts — and
    /// with them witness-set sizes — stay well under the compile cap),
    /// and sparse conflicts (average block size around 10).
    pub fn scaling(facts: usize, seed: u64) -> Self {
        SkewedJoinWorkload::new(facts, 2, 50, facts.max(4), (facts / 40).max(1), seed)
    }

    /// The hot anchor value of relation `R{relation}` — shared by
    /// roughly `hot_percent` of its facts.  Tail values are disjoint
    /// from every hot value by construction.
    pub fn hot_value(&self, relation: usize) -> Value {
        Value::int(relation as i64)
    }

    /// Generates the database and its FD set (one non-key FD `C → B`
    /// per relation).
    ///
    /// # Panics
    /// Panics if `facts`, `relations` or a domain is zero.
    pub fn generate(&self) -> (Database, FdSet) {
        assert!(self.facts > 0, "at least one fact is required");
        assert!(self.relations > 0, "at least one relation is required");
        assert!(
            self.join_domain > 0 && self.conflict_domain > 0,
            "domains must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        let names: Vec<String> = (0..self.relations).map(|r| format!("R{r}")).collect();
        for name in &names {
            schema
                .add_relation(name, &["A", "B", "C", "P"])
                .expect("fresh schema");
        }
        let mut db = Database::with_schema(schema);
        let ids: Vec<_> = names
            .iter()
            .map(|name| db.schema().relation_id(name).expect("relation exists"))
            .collect();
        let facts: Vec<Fact> = (0..self.facts)
            .map(|payload| {
                let relation = payload % self.relations;
                let hot = rng.random_range(0..100) < self.hot_percent;
                // Hot values are 0..relations; tail values start at
                // `relations` and are unique per fact, so the anchor
                // column is one heavy posting plus singletons.
                let a = if hot {
                    relation as i64
                } else {
                    (self.relations + payload) as i64
                };
                let b = rng.random_range(0..self.join_domain) as i64;
                let c = rng.random_range(0..self.conflict_domain) as i64;
                Fact::new(
                    ids[relation],
                    vec![
                        Value::int(a),
                        Value::int(b),
                        Value::int(c),
                        Value::int(payload as i64),
                    ],
                )
            })
            .collect();
        db.extend(facts).expect("schema matches");
        let mut sigma = FdSet::new();
        for name in &names {
            sigma.add(
                FunctionalDependency::from_names(db.schema(), name, &["C"], &["B"])
                    .expect("relation has attributes C and B"),
            );
        }
        (db, sigma)
    }
}

/// The `(R0, R1)` relation pair plus R0's hot-anchored fact `B` values,
/// shared by both query generators.
fn hot_join_context(
    db: &Database,
) -> Result<(RelationId, RelationId, BTreeSet<Value>), QueryError> {
    let r0 = db.schema().relation_id("R0")?;
    let r1 = db.schema().relation_id("R1")?;
    let hot0 = Value::int(0);
    let hot_b: BTreeSet<Value> = db
        .iter()
        .filter(|(_, f)| f.relation() == r0 && f.values()[0] == hot0)
        .map(|(_, f)| f.values()[1].clone())
        .collect();
    Ok((r0, r1, hot_b))
}

/// A bank of `k` Boolean two-atom join queries over a
/// [`SkewedJoinWorkload`] database, each **written hot-first**:
///
/// ```text
/// Ans() :- R0(hot₀, v, w1, w2), R1(tailᵢ, v, w3, w4)
/// ```
///
/// Every atom carries exactly one constant, so the coverage-greedy
/// planner ties and keeps the written order — enumerating R0's hot
/// posting (thousands of facts) and probing R1 per binding — while the
/// cost-based planner starts from the singleton tail posting and
/// intersects into the hot side.  Same witness sets, orders-of-magnitude
/// different enumeration cost: the head-to-head of the `e22` bench.
///
/// The tail anchors are distinct singleton values chosen (by seed) from
/// R1 facts whose `B` value also occurs among R0's hot facts, so every
/// query is entailed by the full database.
///
/// # Panics
/// Panics if the database has fewer than `k` tail facts in R1 that join
/// with an R0 hot fact.
pub fn hot_tail_join_queries(
    db: &Database,
    k: usize,
    seed: u64,
) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    let (r0, r1, hot_b) = hot_join_context(db)?;
    let hot0 = Value::int(0);
    let hot1 = Value::int(1);
    let mut anchors: Vec<Value> = db
        .iter()
        .filter(|(_, f)| {
            f.relation() == r1 && f.values()[0] != hot1 && hot_b.contains(&f.values()[1])
        })
        .map(|(_, f)| f.values()[0].clone())
        .collect();
    assert!(
        anchors.len() >= k,
        "only {} of the requested {k} tail anchors join with a hot fact",
        anchors.len()
    );
    use rand::seq::SliceRandom;
    anchors.shuffle(&mut StdRng::seed_from_u64(seed));
    anchors
        .into_iter()
        .take(k)
        .map(|tail| {
            ConjunctiveQuery::boolean(
                db.schema(),
                vec![
                    Atom::new(
                        r0,
                        vec![
                            Term::Const(hot0.clone()),
                            Term::var("v"),
                            Term::var("w1"),
                            Term::var("w2"),
                        ],
                    ),
                    Atom::new(
                        r1,
                        vec![
                            Term::Const(tail),
                            Term::var("v"),
                            Term::var("w3"),
                            Term::var("w4"),
                        ],
                    ),
                ],
            )
        })
        .collect()
}

/// A bank of `k` Boolean queries sharing an expensive hot⋈hot prefix and
/// diverging in one cheap tail atom:
///
/// ```text
/// Ans() :- R0(hot₀, v, w1, w2), R1(hot₁, v, w3, w4), R1(tailᵢ, u1, u2, u3)
/// ```
///
/// In **written** order the two hot atoms are a shared prefix, so
/// structural bank compilation factors them into one trie pass.  The
/// **cost-based** planner moves the singleton tail atom first (and keeps
/// the hot join in one fixed order after it, identical across the bank),
/// which destroys prefix sharing — every query now *ends* with the hot
/// join.  Because the tail atom shares no variable with the hot atoms,
/// that two-atom suffix is a closed common subtree, and the bank
/// compiler's subtree factoring enumerates it once and replays it `k`
/// times: the workload behind the `e22` pass-count gate.
///
/// The hot join is guaranteed non-empty (the generator's `B` collisions
/// are checked), so every query is entailed by the full database.
///
/// # Panics
/// Panics if no R0 hot fact joins with an R1 hot fact, or if R1 has
/// fewer than `k` tail facts.
pub fn hot_suffix_bank(
    db: &Database,
    k: usize,
    seed: u64,
) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    let (_, r1, hot_b) = hot_join_context(db)?;
    let hot0 = Value::int(0);
    let hot1 = Value::int(1);
    assert!(
        db.iter().any(|(_, f)| f.relation() == r1
            && f.values()[0] == hot1
            && hot_b.contains(&f.values()[1])),
        "no hot R0 fact joins with a hot R1 fact; grow the workload or shrink join_domain"
    );
    let mut tails: Vec<Value> = db
        .iter()
        .filter(|(_, f)| f.relation() == r1 && f.values()[0] != hot1)
        .map(|(_, f)| f.values()[0].clone())
        .collect();
    assert!(
        tails.len() >= k,
        "only {} of the requested {k} distinct tail atoms exist in R1",
        tails.len()
    );
    use rand::seq::SliceRandom;
    tails.shuffle(&mut StdRng::seed_from_u64(seed));
    let r0 = db.schema().relation_id("R0")?;
    tails
        .into_iter()
        .take(k)
        .map(|tail| {
            ConjunctiveQuery::boolean(
                db.schema(),
                vec![
                    Atom::new(
                        r0,
                        vec![
                            Term::Const(hot0.clone()),
                            Term::var("v"),
                            Term::var("w1"),
                            Term::var("w2"),
                        ],
                    ),
                    Atom::new(
                        r1,
                        vec![
                            Term::Const(hot1.clone()),
                            Term::var("v"),
                            Term::var("w3"),
                            Term::var("w4"),
                        ],
                    ),
                    Atom::new(
                        r1,
                        vec![
                            Term::Const(tail),
                            Term::var("u1"),
                            Term::var("u2"),
                            Term::var("u3"),
                        ],
                    ),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucqa_db::ViolationSet;
    use ucqa_query::QueryEvaluator;

    fn workload() -> SkewedJoinWorkload {
        SkewedJoinWorkload::scaling(800, 13)
    }

    #[test]
    fn skew_concentrates_on_one_hot_value_per_relation() {
        let w = workload();
        let (db, sigma) = w.generate();
        assert_eq!(db.len(), 800);
        assert!(!sigma.is_keys(db.schema()));
        assert!(!ViolationSet::of_database(&db, &sigma).is_empty());
        for relation in 0..2 {
            let id = db.schema().relation_id(&format!("R{relation}")).unwrap();
            let hot = w.hot_value(relation);
            let hot_count = db
                .iter()
                .filter(|(_, f)| f.relation() == id && f.values()[0] == hot)
                .count();
            // ~50% of the relation's 400 facts; generous slack.
            assert!(
                (120..=280).contains(&hot_count),
                "R{relation} hot share {hot_count} is off profile"
            );
            // Tail anchors are singletons: every non-hot value occurs once.
            let tails: Vec<Value> = db
                .iter()
                .filter(|(_, f)| f.relation() == id && f.values()[0] != hot)
                .map(|(_, f)| f.values()[0].clone())
                .collect();
            let distinct: BTreeSet<_> = tails.iter().collect();
            assert_eq!(distinct.len(), tails.len());
        }
        // Deterministic in the seed.
        let (again, _) = workload().generate();
        for (id, fact) in db.iter() {
            assert_eq!(fact, again.fact(id));
        }
    }

    #[test]
    fn hot_tail_queries_split_the_planners_and_are_entailed() {
        let (db, _) = workload().generate();
        let queries = hot_tail_join_queries(&db, 4, 5).unwrap();
        assert_eq!(queries.len(), 4);
        for query in &queries {
            // Coverage-greedy ties towards the written hot-first order…
            let structural = QueryEvaluator::new(query.clone());
            let order: Vec<usize> = structural.plan().atom_order().collect();
            assert_eq!(order, vec![0, 1], "structural keeps the hot atom first");
            // …while the cost model starts from the singleton tail posting.
            let costed = QueryEvaluator::with_stats(query.clone(), &db).unwrap();
            let order: Vec<usize> = costed.plan().atom_order().collect();
            assert_eq!(order, vec![1, 0], "costed flips to the tail atom");
            assert!(structural.entails(&db, &db.all_facts()));
        }
        assert_eq!(hot_tail_join_queries(&db, 4, 5).unwrap(), queries);
    }

    #[test]
    fn hot_suffix_bank_shares_a_written_prefix_and_a_costed_suffix() {
        let (db, _) = workload().generate();
        let bank = hot_suffix_bank(&db, 6, 3).unwrap();
        assert_eq!(bank.len(), 6);
        let prefix = &bank[0].atoms()[..2];
        let mut costed_suffix = None;
        for query in &bank {
            assert_eq!(&query.atoms()[..2], prefix, "written prefix is shared");
            let structural = QueryEvaluator::new(query.clone());
            let order: Vec<usize> = structural.plan().atom_order().collect();
            assert_eq!(order, vec![0, 1, 2], "structural keeps the written order");
            assert!(structural.entails(&db, &db.all_facts()));
            let costed = QueryEvaluator::with_stats(query.clone(), &db).unwrap();
            let order: Vec<usize> = costed.plan().atom_order().collect();
            assert_eq!(order[0], 2, "costed moves the cheap tail atom first");
            // The hot suffix lands in one fixed order across the bank —
            // the shape the subtree-sharing compiler collapses.
            match &costed_suffix {
                None => costed_suffix = Some(order[1..].to_vec()),
                Some(suffix) => assert_eq!(&order[1..], suffix.as_slice()),
            }
        }
        assert_eq!(hot_suffix_bank(&db, 6, 3).unwrap(), bank);
    }
}
