//! Compiled query lineage: the monotone DNF of witness sets.
//!
//! The FPRAS drivers of `ucqa-core` reduce uniform operational CQA to
//! drawing millions of Bernoulli samples of the form *"does this sampled
//! repair entail the query (with the candidate answer)?"*.  Every repair is
//! a subset `D' ⊆ D` of one fixed database, and conjunctive queries are
//! monotone, so the entailment predicate is a fixed monotone Boolean
//! function of the fact bits: `D' ⊨ Q(c̄)` iff the image of **some**
//! homomorphism `h` with `h(x̄) = c̄` survives in `D'`.
//!
//! [`CompiledLineage`] materialises that function once per
//! `(D, Q, candidate)` triple: it enumerates all homomorphisms up front and
//! compiles their images into a minimal antichain of witness bitsets.  The
//! per-sample check is then *"some witness ⊆ repair"* — a handful of
//! word-level AND/compare operations per witness — instead of a full
//! backtracking homomorphism search.  Witness enumeration is capped (query
//! lineage can be exponential in the query size); past the cap the caller
//! falls back to the backtracking evaluator.

use ucqa_db::Value;
use ucqa_db::{Database, FactChange, FactId, FactSet};

use crate::{CompileBudget, QueryError, QueryEvaluator};

/// Default cap on the number of witnesses materialised by
/// [`CompiledLineage::compile`].
///
/// `4096` witnesses × a 1 000-fact universe is ~64 KiB of bitset words —
/// comfortably cache-resident — while the linear witness scan stays far
/// cheaper than a backtracking search that would re-derive those same
/// homomorphisms on every sample.
pub const DEFAULT_WITNESS_CAP: usize = 4096;

/// The compiled lineage of one `(database, query, candidate)` triple: a
/// minimal monotone DNF over fact bitsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLineage {
    /// Minimal witness antichain, sorted by ascending popcount (smaller
    /// witnesses are cheaper to check and more likely to be contained).
    witnesses: Vec<FactSet>,
    universe: usize,
    /// The database changelog version the lineage was compiled (or last
    /// refreshed) against — what [`CompiledLineage::refresh`] replays from.
    version: u64,
}

impl CompiledLineage {
    /// Compiles the lineage of `candidate` over the **full** database with
    /// the default witness cap.
    ///
    /// Returns `Ok(None)` when the number of distinct witnesses exceeds the
    /// cap, in which case the caller should keep using the backtracking
    /// evaluator.
    pub fn compile(
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
    ) -> Result<Option<Self>, QueryError> {
        Self::compile_with_cap(evaluator, db, candidate, DEFAULT_WITNESS_CAP)
    }

    /// As [`CompiledLineage::compile`], with an explicit witness cap.
    ///
    /// Witness enumeration runs on the evaluator's plan-based pipeline
    /// ([`QueryEvaluator::for_each_answer_image`] — atom steps over the
    /// database's relation indexes, cost-ordered against the live
    /// statistics when the evaluator was built with
    /// [`QueryEvaluator::with_stats`]); the step order never changes the
    /// compiled antichain, only the enumeration cost, and the pre-plan
    /// behaviour survives as
    /// [`CompiledLineage::compile_unplanned_with_cap`].
    pub fn compile_with_cap(
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
        cap: usize,
    ) -> Result<Option<Self>, QueryError> {
        let universe = db.len();
        let all = db.all_facts();
        let mut raw: Vec<FactSet> = Vec::new();
        let overflowed = evaluator.for_each_answer_image(db, &all, candidate, |image| {
            let mut witness = FactSet::empty(universe);
            for &fact in image {
                witness.insert(fact);
            }
            raw.push(witness);
            // Enumeration keeps its own budget: one past the cap is
            // enough to know compilation must be abandoned.
            raw.len() > cap
        })?;
        if overflowed {
            return Ok(None);
        }
        Ok(Some(Self::from_witnesses(raw, universe, db.version())))
    }

    /// As [`CompiledLineage::compile`], under a [`CompileBudget`].
    ///
    /// The budget is polled once per enumerated witness; when it
    /// interrupts enumeration the result is `Ok(None)` — exactly the
    /// over-cap outcome — so the caller degrades to the backtracking
    /// evaluator instead of stalling on a pathological lineage.
    pub fn compile_with_budget(
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
        budget: &CompileBudget,
    ) -> Result<Option<Self>, QueryError> {
        let universe = db.len();
        let all = db.all_facts();
        let mut raw: Vec<FactSet> = Vec::new();
        let mut steps = 0u64;
        let interrupted = evaluator.for_each_answer_image(db, &all, candidate, |image| {
            steps += 1;
            if budget.interrupted(steps) {
                return true;
            }
            let mut witness = FactSet::empty(universe);
            for &fact in image {
                witness.insert(fact);
            }
            raw.push(witness);
            raw.len() > DEFAULT_WITNESS_CAP
        })?;
        if interrupted {
            return Ok(None);
        }
        Ok(Some(Self::from_witnesses(raw, universe, db.version())))
    }

    /// As [`CompiledLineage::compile`], enumerating witnesses with the
    /// **unplanned** backtracking baseline (body-order atoms,
    /// whole-relation scans) — the pre-plan compile path measured by the
    /// `e17` bench and cross-checked by the property tests.  The witness
    /// set is identical to the planned compile's.
    pub fn compile_unplanned(
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
    ) -> Result<Option<Self>, QueryError> {
        Self::compile_unplanned_with_cap(evaluator, db, candidate, DEFAULT_WITNESS_CAP)
    }

    /// As [`CompiledLineage::compile_unplanned`], with an explicit cap.
    pub fn compile_unplanned_with_cap(
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
        cap: usize,
    ) -> Result<Option<Self>, QueryError> {
        let universe = db.len();
        let all = db.all_facts();
        let mut raw: Vec<FactSet> = Vec::new();
        let overflowed =
            evaluator.for_each_answer_image_unplanned(db, &all, candidate, |image| {
                let mut witness = FactSet::empty(universe);
                for &fact in image {
                    witness.insert(fact);
                }
                raw.push(witness);
                raw.len() > cap
            })?;
        if overflowed {
            return Ok(None);
        }
        Ok(Some(Self::from_witnesses(raw, universe, db.version())))
    }

    /// Builds the minimal antichain from raw witness sets: duplicates and
    /// supersets are absorbed (`w ⊆ w'` makes `w'` redundant — monotone DNF
    /// absorption).
    fn from_witnesses(raw: Vec<FactSet>, universe: usize, version: u64) -> Self {
        CompiledLineage {
            witnesses: minimal_antichain(raw),
            universe,
            version,
        }
    }

    /// Incrementally refreshes the lineage after database mutations, with
    /// the default witness cap: replays the changelog since the version
    /// the lineage was compiled against instead of re-enumerating every
    /// homomorphism.
    ///
    /// * Witnesses touching a deleted fact are dropped (their absorbed
    ///   supersets contained the same fact, so no absorbed witness can
    ///   resurface); survivors are grown to the new universe.
    /// * New witnesses are enumerated by pinned delta passes of the join
    ///   plan ([`QueryEvaluator::for_each_delta_answer_image`]), visiting
    ///   only matches that touch an inserted fact.
    ///
    /// The merged set re-minimalises to **exactly** the antichain a fresh
    /// [`CompiledLineage::compile`] would build — same witnesses, same
    /// order — so estimates drawn over a refreshed lineage are
    /// bit-identical to estimates over a recompiled one.
    ///
    /// Returns `Ok(false)` when the refreshed witness count exceeds the
    /// cap; the lineage is then left unchanged and the caller should fall
    /// back to the backtracking evaluator (or recompile).  `evaluator` and
    /// `candidate` must be the pair the lineage was compiled from.
    pub fn refresh(
        &mut self,
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
    ) -> Result<bool, QueryError> {
        self.refresh_with_cap(evaluator, db, candidate, DEFAULT_WITNESS_CAP)
    }

    /// As [`CompiledLineage::refresh`], with an explicit witness cap.
    pub fn refresh_with_cap(
        &mut self,
        evaluator: &QueryEvaluator,
        db: &Database,
        candidate: &[Value],
        cap: usize,
    ) -> Result<bool, QueryError> {
        let universe = db.len();
        let mut deleted = FactSet::empty(universe);
        let mut inserted_by_relation: Vec<Vec<FactId>> =
            vec![Vec::new(); db.schema().relation_count()];
        for change in db.changes_since(self.version) {
            match change {
                // An inserted-then-deleted fact is skipped here and cannot
                // appear in old witnesses (its id postdates them), so it
                // contributes nothing — as it should.
                FactChange::Inserted(id) => {
                    if db.is_live(*id) {
                        inserted_by_relation[db.relation_of(*id).index()].push(*id);
                    }
                }
                FactChange::Deleted { id, .. } => {
                    deleted.insert(*id);
                }
            }
        }
        let mut raw: Vec<FactSet> = Vec::with_capacity(self.witnesses.len());
        for witness in &self.witnesses {
            // `intersects` scans the common word prefix, so the old
            // (smaller-universe) witness compares fine against the new
            // deleted set.
            if witness.intersects(&deleted) {
                continue;
            }
            let mut survivor = witness.clone();
            survivor.grow(universe);
            raw.push(survivor);
        }
        let all = db.all_facts();
        let overflowed = evaluator.for_each_delta_answer_image(
            db,
            &all,
            candidate,
            &inserted_by_relation,
            |image| {
                let mut witness = FactSet::empty(universe);
                for &fact in image {
                    witness.insert(fact);
                }
                raw.push(witness);
                raw.len() > cap
            },
        )?;
        if overflowed {
            return Ok(false);
        }
        *self = Self::from_witnesses(raw, universe, db.version());
        Ok(true)
    }

    /// The per-sample entailment check: `true` iff some witness survives in
    /// `repair`, i.e. `repair ⊨ Q(c̄)`.
    ///
    /// Performs no heap allocation; cost is at most
    /// `witness_count × ⌈universe/64⌉` word operations, with early exit.
    #[inline]
    pub fn entails(&self, repair: &FactSet) -> bool {
        debug_assert_eq!(repair.universe(), self.universe);
        self.witnesses.iter().any(|w| repair.contains_all(w))
    }

    /// Number of witnesses in the minimal antichain.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }

    /// The witnesses themselves (sorted by ascending cardinality).
    pub fn witnesses(&self) -> &[FactSet] {
        &self.witnesses
    }

    /// The size of the fact universe the lineage ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The database changelog version the lineage is current with (see
    /// [`Database::version`]); [`CompiledLineage::refresh`] replays the
    /// changelog from here.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `true` iff the candidate is entailed by **every** subset, including
    /// the empty one (the query is satisfied by zero atoms matching — only
    /// possible for queries with an empty body).
    pub fn is_unconditional(&self) -> bool {
        self.witnesses.first().is_some_and(FactSet::is_empty)
    }

    /// `true` iff no subset of the database entails the candidate (the
    /// target probability is exactly zero).
    pub fn never_entails(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Reduces raw witness sets to the minimal monotone-DNF antichain:
/// duplicates and supersets are absorbed (`w ⊆ w'` makes `w'` redundant),
/// and the survivors are sorted by ascending popcount (smaller witnesses
/// are cheaper to check and more likely to be contained).
///
/// Exact duplicates are removed by sorting first, so the quadratic
/// containment pass only compares a candidate against *strictly smaller*
/// kept witnesses (among equal cardinalities, `⊆` implies `=`, which the
/// dedup already handled).  Banks of equal-size witnesses — atomic
/// membership queries, fixed-shape join banks — thus minimise in
/// `O(n log n)` instead of `O(n²)` word scans.
///
/// Shared between single-query compilation and the bank's shared-trie
/// compilation, so both produce the same antichain from the same raw set.
pub(crate) fn minimal_antichain(mut raw: Vec<FactSet>) -> Vec<FactSet> {
    raw.sort_unstable();
    raw.dedup();
    raw.sort_by_key(FactSet::len);
    let mut witnesses: Vec<FactSet> = Vec::new();
    for candidate in raw {
        // `witnesses` is in ascending cardinality order (candidates
        // arrive that way), so the strictly-smaller prefix is contiguous.
        let smaller = witnesses.partition_point(|kept| kept.len() < candidate.len());
        if !witnesses[..smaller]
            .iter()
            .any(|kept| kept.is_subset_of(&candidate))
        {
            witnesses.push(candidate);
        }
    }
    witnesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::{FactId, Schema};

    fn blocks_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (k, v) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        db
    }

    #[test]
    fn entails_agrees_with_the_evaluator_on_all_subsets() {
        let db = blocks_db();
        for (text, candidate) in [
            ("Ans(x) :- R(1, x)", vec![Value::int(1)]),
            ("Ans() :- R(x, y), R(z, y)", vec![]),
            ("Ans() :- R(1, x), R(2, x)", vec![]),
            ("Ans() :- R(9, 9)", vec![]),
        ] {
            let evaluator = QueryEvaluator::new(parse_query(db.schema(), text).unwrap());
            let lineage = CompiledLineage::compile(&evaluator, &db, &candidate)
                .unwrap()
                .expect("under cap");
            for mask in 0u32..(1 << db.len()) {
                let subset = FactSet::from_iter(
                    db.len(),
                    (0..db.len())
                        .filter(|i| (mask >> i) & 1 == 1)
                        .map(FactId::new),
                );
                assert_eq!(
                    lineage.entails(&subset),
                    evaluator.has_answer(&db, &subset, &candidate).unwrap(),
                    "query {text}, mask {mask:b}"
                );
            }
        }
    }

    #[test]
    fn witnesses_form_a_minimal_antichain() {
        let db = blocks_db();
        // R(x, y), R(z, y): single-fact images (x = z) absorb the two-fact
        // ones, leaving exactly the five singleton witnesses.
        let evaluator =
            QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(x, y), R(z, y)").unwrap());
        let lineage = CompiledLineage::compile(&evaluator, &db, &[])
            .unwrap()
            .unwrap();
        assert_eq!(lineage.witness_count(), 5);
        assert!(lineage.witnesses().iter().all(|w| w.len() == 1));
        for (i, a) in lineage.witnesses().iter().enumerate() {
            for (j, b) in lineage.witnesses().iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset_of(b), "witness {i} ⊆ witness {j}");
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_candidates_have_no_witnesses() {
        let db = blocks_db();
        let evaluator = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(9, 9)").unwrap());
        let lineage = CompiledLineage::compile(&evaluator, &db, &[])
            .unwrap()
            .unwrap();
        assert!(lineage.never_entails());
        assert!(!lineage.entails(&db.all_facts()));
    }

    #[test]
    fn cap_overflow_returns_none() {
        let db = blocks_db();
        let evaluator = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(x, y)").unwrap());
        assert!(CompiledLineage::compile_with_cap(&evaluator, &db, &[], 2)
            .unwrap()
            .is_none());
        assert!(CompiledLineage::compile_with_cap(&evaluator, &db, &[], 5)
            .unwrap()
            .is_some());
    }

    #[test]
    fn refresh_replays_mutations_and_matches_a_fresh_compile() {
        let mut db = blocks_db();
        for (text, candidate) in [
            ("Ans(x) :- R(1, x)", vec![Value::int(1)]),
            ("Ans() :- R(x, y), R(z, y)", vec![]),
            ("Ans() :- R(1, x), R(2, x)", vec![]),
            ("Ans() :- R(9, 9)", vec![]),
        ] {
            let evaluator = QueryEvaluator::new(parse_query(db.schema(), text).unwrap());
            let mut lineage = CompiledLineage::compile(&evaluator, &db, &candidate)
                .unwrap()
                .unwrap();
            // No mutations: refresh is a structural no-op.
            let before = lineage.clone();
            assert!(lineage.refresh(&evaluator, &db, &candidate).unwrap());
            assert_eq!(lineage, before, "query {text}");
            // Insert facts extending block 1 and bridging blocks, and
            // delete R(2, 1); the refreshed lineage must equal — same
            // witnesses, same order — a compile from scratch.
            db.insert_values("R", [Value::int(1), Value::int(9)])
                .unwrap();
            db.insert_values("R", [Value::int(2), Value::int(9)])
                .unwrap();
            let gone = ucqa_db::Fact::new(
                db.schema().relation_id("R").unwrap(),
                vec![Value::int(2), Value::int(1)],
            );
            db.delete(db.fact_id(&gone).unwrap()).unwrap();
            assert!(lineage.refresh(&evaluator, &db, &candidate).unwrap());
            let fresh = CompiledLineage::compile(&evaluator, &db, &candidate)
                .unwrap()
                .unwrap();
            assert_eq!(lineage, fresh, "query {text}");
            // Undo for the next query: re-insert what was deleted (new id,
            // but compile and refresh both see the same database).
            db.insert_values("R", [Value::int(2), Value::int(1)])
                .unwrap();
        }
    }

    #[test]
    fn refresh_grounds_constants_first_interned_by_the_mutations() {
        let mut db = blocks_db();
        // 8 is not interned at compile time: the lineage compiles to zero
        // witnesses (never entails).
        let evaluator = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(8, x)").unwrap());
        let mut lineage = CompiledLineage::compile(&evaluator, &db, &[])
            .unwrap()
            .unwrap();
        assert!(lineage.never_entails());
        db.insert_values("R", [Value::int(8), Value::int(1)])
            .unwrap();
        assert!(lineage.refresh(&evaluator, &db, &[]).unwrap());
        let fresh = CompiledLineage::compile(&evaluator, &db, &[])
            .unwrap()
            .unwrap();
        assert_eq!(lineage, fresh);
        assert_eq!(lineage.witness_count(), 1);
        assert!(lineage.entails(&db.all_facts()));
    }

    #[test]
    fn over_cap_refresh_reports_false_and_leaves_the_lineage_unchanged() {
        let mut db = blocks_db();
        let evaluator = QueryEvaluator::new(parse_query(db.schema(), "Ans() :- R(1, x)").unwrap());
        let mut lineage = CompiledLineage::compile_with_cap(&evaluator, &db, &[], 3)
            .unwrap()
            .unwrap();
        let before = lineage.clone();
        for v in 10..14 {
            db.insert_values("R", [Value::int(1), Value::int(v)])
                .unwrap();
        }
        assert!(!lineage.refresh_with_cap(&evaluator, &db, &[], 3).unwrap());
        assert_eq!(
            lineage, before,
            "failed refresh must not corrupt the lineage"
        );
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let db = blocks_db();
        let evaluator = QueryEvaluator::new(parse_query(db.schema(), "Ans(x) :- R(1, x)").unwrap());
        assert!(CompiledLineage::compile(&evaluator, &db, &[]).is_err());
    }
}
