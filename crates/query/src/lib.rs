//! # `ucqa-query`
//!
//! Conjunctive queries (Section 2 of the paper): abstract syntax, a small
//! textual parser, and homomorphism-based evaluation.
//!
//! A conjunctive query has the form `Ans(x̄) :- R₁(ȳ₁), …, Rₙ(ȳₙ)` where
//! each `Rᵢ(ȳᵢ)` is a relational atom over variables and constants and the
//! answer variables `x̄` all occur in the body.  Evaluation is defined via
//! homomorphisms into a database; [`eval`] enumerates them by executing a
//! [`plan::JoinPlan`] over the database's `(position, value)` indexes —
//! cost-ordered against the live [`ucqa_db::RelationIndex`] statistics
//! when built with [`QueryEvaluator::with_stats`], structurally
//! coverage-ordered otherwise (queries are fixed — data complexity — so
//! the plan is built once per evaluator).  [`lineage`] compiles the
//! enumeration result into witness bitsets for the Monte-Carlo hot loop,
//! and [`bank`] shares both the enumeration (common atom prefixes *and*
//! canonicalised suffix subtrees, one scan trie with fill-once/replay
//! memoisation) and the witnesses (one deduplicated arena) across a
//! whole bank of queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ast;
pub mod bank;
pub mod error;
pub mod eval;
pub mod lineage;
pub mod parser;
pub mod plan;

pub use ast::{Atom, ConjunctiveQuery, Term, Variable};
pub use bank::{
    BankLiveSet, BankQueryRef, BankScratch, CompileBudget, CompileStats, LineageBank, RefreshDelta,
};
pub use error::QueryError;
pub use eval::{Bindings, QueryEvaluator};
pub use lineage::CompiledLineage;
pub use plan::{JoinPlan, PlanExplain, StepExplain};

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        Atom, BankLiveSet, BankScratch, Bindings, CompileBudget, CompileStats, CompiledLineage,
        ConjunctiveQuery, JoinPlan, LineageBank, PlanExplain, QueryError, QueryEvaluator,
        RefreshDelta, StepExplain, Term, Variable,
    };
}
