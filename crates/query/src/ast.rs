//! Abstract syntax of conjunctive queries.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use ucqa_db::{RelationId, Schema, Value};

use crate::QueryError;

/// A query variable, identified by name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Constructs a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(name: &str) -> Self {
        Variable::new(name)
    }
}

/// A term of an atom: either a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A query variable.
    Var(Variable),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Variable::new(name))
    }

    /// Convenience constructor for a constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Returns the variable, if this term is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v:?}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `R(t₁, …, tₙ)` over a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    relation: RelationId,
    terms: Vec<Term>,
}

impl Atom {
    /// Constructs an atom; arity is validated against the schema when the
    /// atom is added to a [`ConjunctiveQuery`].
    pub fn new(relation: RelationId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }

    /// The relation of this atom.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The terms of this atom, in positional order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The variables occurring in this atom.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

/// A conjunctive query `Ans(x̄) :- R₁(ȳ₁), …, Rₙ(ȳₙ)`.
///
/// Invariants (enforced by [`ConjunctiveQuery::new`]):
/// * every atom's arity matches its relation's arity in the schema;
/// * every answer variable occurs in at least one body atom (safety).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    answer_vars: Vec<Variable>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Constructs a conjunctive query, validating arities and safety.
    pub fn new(
        schema: &Schema,
        answer_vars: Vec<Variable>,
        atoms: Vec<Atom>,
    ) -> Result<Self, QueryError> {
        for atom in &atoms {
            let expected = schema.arity(atom.relation());
            if atom.terms().len() != expected {
                return Err(QueryError::Db(ucqa_db::DbError::ArityMismatch {
                    relation: schema.relation_name(atom.relation()).to_string(),
                    expected,
                    actual: atom.terms().len(),
                }));
            }
        }
        let body_vars: BTreeSet<&Variable> = atoms.iter().flat_map(|a| a.variables()).collect();
        for var in &answer_vars {
            if !body_vars.contains(var) {
                return Err(QueryError::UnsafeAnswerVariable {
                    variable: var.name().to_string(),
                });
            }
        }
        Ok(ConjunctiveQuery { answer_vars, atoms })
    }

    /// Constructs a *Boolean* conjunctive query (no answer variables).
    pub fn boolean(schema: &Schema, atoms: Vec<Atom>) -> Result<Self, QueryError> {
        ConjunctiveQuery::new(schema, Vec::new(), atoms)
    }

    /// The answer variables `x̄`.
    pub fn answer_vars(&self) -> &[Variable] {
        &self.answer_vars
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Returns `true` iff the query is Boolean (no answer variables).
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// Returns `true` iff the query is atomic (single body atom).
    pub fn is_atomic(&self) -> bool {
        self.atoms.len() == 1
    }

    /// Number of body atoms — the `|Q|` of the lower-bound lemmas.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The set of variables occurring in the query (`var(Q)`).
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.atoms
            .iter()
            .flat_map(|a| a.variables().cloned())
            .collect()
    }

    /// The set of constants occurring in the query (`const(Q)`).
    pub fn constants(&self) -> BTreeSet<Value> {
        self.atoms
            .iter()
            .flat_map(|a| a.terms().iter())
            .filter_map(|t| match t {
                Term::Const(c) => Some(c.clone()),
                Term::Var(_) => None,
            })
            .collect()
    }

    /// Renders the query using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Helper for displaying a query with relation names resolved.
pub struct QueryDisplay<'a> {
    query: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ans(")?;
        for (i, v) in self.query.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.query.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.schema.relation_name(atom.relation()))?;
            for (j, t) in atom.terms().iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("E", &["S", "T"]).unwrap();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema
    }

    #[test]
    fn construction_and_accessors() {
        let schema = schema();
        let e = schema.relation_id("E").unwrap();
        let v = schema.relation_id("V").unwrap();
        let q = ConjunctiveQuery::new(
            &schema,
            vec![Variable::new("x")],
            vec![
                Atom::new(e, vec![Term::var("x"), Term::var("y")]),
                Atom::new(v, vec![Term::var("y"), Term::constant(1)]),
            ],
        )
        .unwrap();
        assert_eq!(q.answer_vars().len(), 1);
        assert_eq!(q.atom_count(), 2);
        assert!(!q.is_boolean());
        assert!(!q.is_atomic());
        assert_eq!(q.variables().len(), 2);
        assert_eq!(q.constants().len(), 1);
        assert_eq!(q.display(&schema).to_string(), "Ans(x) :- E(x, y), V(y, 1)");
    }

    #[test]
    fn unsafe_answer_variable_rejected() {
        let schema = schema();
        let e = schema.relation_id("E").unwrap();
        let err = ConjunctiveQuery::new(
            &schema,
            vec![Variable::new("z")],
            vec![Atom::new(e, vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnsafeAnswerVariable { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = schema();
        let e = schema.relation_id("E").unwrap();
        let err = ConjunctiveQuery::boolean(&schema, vec![Atom::new(e, vec![Term::var("x")])])
            .unwrap_err();
        assert!(matches!(err, QueryError::Db(_)));
    }

    #[test]
    fn boolean_atomic_query() {
        let schema = schema();
        let v = schema.relation_id("V").unwrap();
        let q = ConjunctiveQuery::boolean(
            &schema,
            vec![Atom::new(v, vec![Term::constant("n"), Term::constant(0)])],
        )
        .unwrap();
        assert!(q.is_boolean());
        assert!(q.is_atomic());
        assert!(q.variables().is_empty());
    }
}
