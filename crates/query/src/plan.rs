//! Selectivity-ordered join plans for witness enumeration.
//!
//! The slot-compiled backtracking evaluator of [`crate::eval`] joins the
//! query atoms **in the order they were written**, scanning the whole
//! relation at every step.  That is fine for entailment checks on sampled
//! repairs (the compiled-lineage bitsets took that job over in PR 1), but
//! witness *enumeration* — the compile step behind every
//! [`crate::CompiledLineage`] and [`crate::LineageBank`] entry — still ran
//! one naive pass per `(query, candidate)`.  This module turns enumeration
//! into a plan-based pipeline:
//!
//! * **Atom order** is chosen greedily.  The structural planner
//!   ([`JoinPlan::build`]) picks the atom with the most bound terms
//!   (constants plus variables bound by earlier steps, plus prebound
//!   answer slots), ties broken by the original body order; the
//!   cost-based planner ([`JoinPlan::build_costed`], the default whenever
//!   a database is in scope) instead minimises an estimated output
//!   cardinality per step, computed from live [`RelationIndex`]
//!   statistics: the shortest constant-bound posting run, divided by the
//!   distinct counts of variable-bound positions, falling back to the
//!   relation cardinality for pure scans.  [`JoinPlan::build_with_stats`]
//!   is the older middle ground that keeps coverage ordering and only
//!   breaks ties with statistics.  Bound-late atoms become indexed
//!   lookups instead of cross products, and [`JoinPlan::explain`] reports
//!   the chosen order with per-step estimates.
//! * **Access paths**: execution works on dictionary-encoded [`Sym`]
//!   columns end-to-end.  A step with at least one bound position probes
//!   the [`RelationIndex`] posting runs (dense `u32`-indexed CSR slices)
//!   and walks the *shortest*; when several bound runs are long, the two
//!   shortest are first intersected with a galloping merge
//!   ([`ucqa_db::intersect_postings`]).  A step with no bound position
//!   falls back to a filtered scan of the relation.
//! * **No per-step allocation**: the executor recurses over borrowed
//!   posting slices with the caller-owned slot bindings and image buffers
//!   of the evaluator; nothing is heap-allocated per step (the galloping
//!   path amortises one scratch buffer over its candidate threshold).
//!
//! The planner is purely structural (it only needs the query), so a
//! [`JoinPlan`] is built once per [`crate::QueryEvaluator`] and reused for
//! every database subset; the query's [`Value`] constants are encoded to
//! symbols once per evaluator entry point (a constant the dictionary has
//! never seen matches nothing, so encoding can short-circuit the whole
//! run).  [`LineageBank::compile`](crate::LineageBank) goes one step
//! further and factors the *shared prefixes* of many planned queries into
//! one scan trie — see [`crate::bank`].

use ucqa_db::{
    intersect_postings, Database, Dictionary, FactId, FactSet, RelationId, RelationIndex, Sym,
    Value,
};

/// An atom term resolved against the evaluator's interned variable slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTerm {
    /// A constant that the fact value must equal.
    Const(Value),
    /// A variable, identified by its slot index.
    Var(usize),
}

/// An atom with terms resolved to slots — the planner's unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanAtom {
    /// The atom's relation.
    pub relation: RelationId,
    /// The atom's terms, in positional order.
    pub terms: Vec<PlanTerm>,
}

/// A [`PlanTerm`] with its constant dictionary-encoded: the executor's
/// unit of comparison (symbol equality = one `u32` compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymTerm {
    /// A constant symbol the fact's symbol must equal.
    Const(Sym),
    /// A variable, identified by its slot index.
    Var(usize),
}

/// A [`PlanAtom`] with constants encoded to symbols — what the executor
/// matches and what the bank's scan trie keys its nodes on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymAtom {
    /// The atom's relation.
    pub relation: RelationId,
    /// The atom's encoded terms, in positional order.
    pub terms: Vec<SymTerm>,
}

impl SymAtom {
    /// Encodes `atom` against `dict` without interning.  `None` means some
    /// constant was never interned — the atom (and hence the whole query)
    /// matches no fact of any database over `dict`.
    pub fn encode(atom: &PlanAtom, dict: &Dictionary) -> Option<SymAtom> {
        let terms = atom
            .terms
            .iter()
            .map(|term| match term {
                PlanTerm::Const(value) => dict.lookup(value).map(SymTerm::Const),
                PlanTerm::Var(slot) => Some(SymTerm::Var(*slot)),
            })
            .collect::<Option<Vec<SymTerm>>>()?;
        Some(SymAtom {
            relation: atom.relation,
            terms,
        })
    }

    /// Encodes a whole body; `None` if any atom has an unknown constant.
    pub fn encode_all(atoms: &[PlanAtom], dict: &Dictionary) -> Option<Vec<SymAtom>> {
        atoms
            .iter()
            .map(|atom| SymAtom::encode(atom, dict))
            .collect()
    }
}

impl PlanAtom {
    /// The term positions that are bound when `bound[slot]` marks the
    /// already-bound variable slots: constants, plus bound variables.
    pub(crate) fn bound_positions(&self, bound: &[bool]) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, term)| match term {
                PlanTerm::Const(_) => true,
                PlanTerm::Var(slot) => bound[*slot],
            })
            .map(|(position, _)| position)
            .collect()
    }
}

/// One step of a [`JoinPlan`]: match one atom against the sub-database,
/// extending the current slot bindings.
#[derive(Debug, Clone)]
struct PlanStep {
    /// Index of the atom in the original query body (also the index into
    /// the encoded body the executor runs on).
    atom: usize,
    relation: RelationId,
    /// Term positions guaranteed bound when this step runs (constants and
    /// variables bound by earlier steps / prebinding).  Non-empty ⇒ the
    /// step executes as an indexed lookup.
    bound_positions: Vec<usize>,
    /// The planner's estimated output cardinality for this step at the
    /// time the order was chosen; `None` for purely structural plans
    /// (no statistics were consulted).
    estimate: Option<f64>,
}

/// How [`JoinPlan::build_inner`] orders the atoms.
enum PlanMode<'a> {
    /// Bound coverage only; ties keep the body order.
    Structural,
    /// Bound coverage first; ties broken by [`atom_cost`] estimates.
    TieBreak(&'a RelationIndex, &'a Dictionary),
    /// Minimal [`step_estimate`] per step; ties broken by coverage, then
    /// body order.
    Costed(&'a RelationIndex, &'a Dictionary),
}

/// A selectivity-ordered join plan over the atoms of one query.
///
/// Built once per [`crate::QueryEvaluator`] (one plan for free
/// enumeration, one with the answer slots treated as prebound for
/// candidate-driven enumeration) and executed against any sub-database.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    steps: Vec<PlanStep>,
}

/// Once the shortest posting run of a step exceeds this many candidates
/// (and a second bound run exists), the executor intersects the two
/// shortest runs with a galloping merge before matching, instead of
/// filtering the shortest run one fact at a time.
const GALLOP_THRESHOLD: usize = 64;

impl JoinPlan {
    /// Plans `atoms` greedily by bound coverage.  `slot_count` is the
    /// number of interned variable slots; `prebound_slots` lists the slots
    /// that will be bound before execution starts (the answer slots of a
    /// candidate-driven run, empty for free enumeration).
    ///
    /// Coverage ties go to the earliest body atom — a *stable* choice that
    /// keeps queries sharing a written prefix sharing it after planning
    /// (which is what lets the bank trie factor it).  For
    /// cardinality-aware tie-breaking see [`JoinPlan::build_with_stats`].
    pub fn build(atoms: &[PlanAtom], slot_count: usize, prebound_slots: &[usize]) -> Self {
        JoinPlan::build_inner(atoms, slot_count, prebound_slots, PlanMode::Structural)
    }

    /// As [`JoinPlan::build`], but breaks coverage ties with exact
    /// cardinality statistics from `index` (resolving constants through
    /// `dict`): among equally-covered atoms, the one whose cheapest
    /// constant-bound posting run ([`RelationIndex::posting_len`]) is
    /// shortest wins; atoms without a constant-bound position compare by
    /// an expected-matches estimate (relation cardinality over the
    /// per-position distinct count of their variable-bound positions),
    /// and remaining ties keep the body order.
    ///
    /// Statistics describe one concrete database, so plans built this way
    /// are *per-database*; the default [`JoinPlan::build`] stays purely
    /// structural (and is what the bank trie's prefix sharing relies on).
    pub fn build_with_stats(
        atoms: &[PlanAtom],
        slot_count: usize,
        prebound_slots: &[usize],
        index: &RelationIndex,
        dict: &Dictionary,
    ) -> Self {
        JoinPlan::build_inner(
            atoms,
            slot_count,
            prebound_slots,
            PlanMode::TieBreak(index, dict),
        )
    }

    /// Plans `atoms` by a real cost model: at each step the planner picks
    /// the atom with the smallest `step_estimate` — the estimated output
    /// cardinality of executing it next, computed from live
    /// [`RelationIndex`] statistics (shortest constant-bound posting run,
    /// divided by the distinct counts of already-bound variable positions,
    /// relation cardinality for pure scans).  Since the intermediate size
    /// after a step is the current size times the step's estimate, the
    /// greedy minimum-estimate choice minimises the estimated *cumulative*
    /// intermediate size one step at a time.  Estimate ties go to the atom
    /// with higher bound coverage, then the body order.
    ///
    /// This is the default plan wherever a database is in scope
    /// ([`crate::QueryEvaluator::with_stats`], and through it every
    /// [`crate::CompiledLineage`] and [`crate::LineageBank`] compile); the
    /// structural [`JoinPlan::build`] order survives as the baseline.
    /// The chosen order never changes *what* is enumerated — witness sets
    /// and fallback decisions are enumeration-order-independent — only how
    /// fast.
    pub fn build_costed(
        atoms: &[PlanAtom],
        slot_count: usize,
        prebound_slots: &[usize],
        index: &RelationIndex,
        dict: &Dictionary,
    ) -> Self {
        JoinPlan::build_inner(
            atoms,
            slot_count,
            prebound_slots,
            PlanMode::Costed(index, dict),
        )
    }

    fn build_inner(
        atoms: &[PlanAtom],
        slot_count: usize,
        prebound_slots: &[usize],
        mode: PlanMode<'_>,
    ) -> Self {
        let mut bound = vec![false; slot_count];
        for &slot in prebound_slots {
            bound[slot] = true;
        }
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        let mut steps = Vec::with_capacity(atoms.len());
        while !remaining.is_empty() {
            // Pick the best remaining atom by strict improvement over the
            // incumbent, scanning in body order — so full ties always keep
            // the earliest body atom, with no seeded incumbent that could
            // shadow a strictly better later one.
            let mut best: Option<(usize, usize, f64)> = None;
            for (i, &atom) in remaining.iter().enumerate() {
                let coverage = atoms[atom].bound_positions(&bound).len();
                let cost = match mode {
                    PlanMode::Structural => 0.0,
                    PlanMode::TieBreak(index, dict) => atom_cost(&atoms[atom], &bound, index, dict),
                    PlanMode::Costed(index, dict) => {
                        step_estimate(&atoms[atom], &bound, index, dict)
                    }
                };
                let improves = match best {
                    None => true,
                    Some((_, best_coverage, best_cost)) => match mode {
                        PlanMode::Costed(..) => {
                            cost < best_cost || (cost == best_cost && coverage > best_coverage)
                        }
                        _ => {
                            coverage > best_coverage
                                || (coverage == best_coverage && cost < best_cost)
                        }
                    },
                };
                if improves {
                    best = Some((i, coverage, cost));
                }
            }
            // Invariant, not user-reachable: `remaining` is non-empty, so
            // the first iteration always sets `best`.
            let (i, _, cost) = best.expect("non-empty remaining always yields a best atom");
            let atom = remaining.remove(i);
            let bound_positions = atoms[atom].bound_positions(&bound);
            for term in &atoms[atom].terms {
                if let PlanTerm::Var(slot) = term {
                    bound[*slot] = true;
                }
            }
            let estimate = match mode {
                PlanMode::Structural => None,
                _ => Some(cost),
            };
            steps.push(PlanStep {
                atom,
                relation: atoms[atom].relation,
                bound_positions,
                estimate,
            });
        }
        JoinPlan { steps }
    }

    /// Introspects the plan: one [`StepExplain`] per step, in execution
    /// order, carrying the atom index, the bound positions, the
    /// lookup-vs-scan kind, and the planner's cost estimate (for plans
    /// built with statistics).  The returned report implements
    /// [`std::fmt::Display`] for one-line-per-step printing.
    pub fn explain(&self) -> PlanExplain {
        PlanExplain {
            steps: self
                .steps
                .iter()
                .map(|step| StepExplain {
                    atom: step.atom,
                    relation: step.relation,
                    bound_positions: step.bound_positions.clone(),
                    estimate: step.estimate,
                })
                .collect(),
        }
    }

    /// The planned atom order, as indices into the original query body.
    pub fn atom_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.steps.iter().map(|step| step.atom)
    }

    /// Number of steps that execute as indexed lookups (at least one
    /// statically bound position).  The remaining
    /// `len − indexed_steps` steps are filtered relation scans.
    pub fn indexed_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|step| !step.bound_positions.is_empty())
            .count()
    }

    /// Number of plan steps (= number of body atoms).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the plan has no steps (empty query body).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the plan against `subset ⊆ db`, invoking `sink` at every
    /// full match with the slot bindings and the (unsorted, possibly
    /// duplicated) image.  The sink returns `true` to stop; the overall
    /// return value is `true` iff the run was stopped.
    ///
    /// `encoded` is the dictionary-encoded query body in **original body
    /// order** (the plan's steps index into it); `bindings` must have one
    /// entry per slot, with prebound slots already filled.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run<F>(
        &self,
        db: &Database,
        index: &RelationIndex,
        subset: &FactSet,
        encoded: &[SymAtom],
        bindings: &mut Vec<Option<Sym>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<Sym>], &[FactId]) -> bool,
    {
        self.step(db, index, subset, encoded, 0, bindings, image, sink)
    }

    /// As [`JoinPlan::run`], restricted to matches whose image touches at
    /// least one fact of `inserted_by_relation` (one fact-id list per
    /// relation id, each sorted ascending) — the delta passes behind
    /// incremental lineage refresh.
    ///
    /// The plan is executed once per step `p`, with step `p` *pinned*: its
    /// candidate list is replaced by the inserted facts of its relation
    /// while every other step keeps its normal access path.  Every new
    /// match must place an inserted fact at some step, so the union of the
    /// pinned passes covers exactly the new matches; a match placing `k`
    /// inserted facts at `k` distinct steps is emitted once per such step,
    /// and callers absorb the duplicates (the lineage compiler's antichain
    /// does so by construction).  Pinning is safe because
    /// [`match_and_bind`] re-validates *all* terms of the pinned atom — an
    /// inserted fact that does not actually match is skipped, never bound.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_delta<F>(
        &self,
        db: &Database,
        index: &RelationIndex,
        subset: &FactSet,
        encoded: &[SymAtom],
        inserted_by_relation: &[Vec<FactId>],
        bindings: &mut Vec<Option<Sym>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<Sym>], &[FactId]) -> bool,
    {
        for pinned in 0..self.steps.len() {
            if inserted_by_relation[self.steps[pinned].relation.index()].is_empty() {
                continue;
            }
            if self.step_delta(
                db,
                index,
                subset,
                encoded,
                0,
                pinned,
                inserted_by_relation,
                bindings,
                image,
                sink,
            ) {
                return true;
            }
        }
        false
    }

    /// One recursion frame of a pinned [`JoinPlan::run_delta`] pass:
    /// identical to [`JoinPlan::step`] except that at `depth == pinned`
    /// the candidate facts are the inserted facts of the step's relation.
    #[allow(clippy::too_many_arguments)]
    fn step_delta<F>(
        &self,
        db: &Database,
        index: &RelationIndex,
        subset: &FactSet,
        encoded: &[SymAtom],
        depth: usize,
        pinned: usize,
        inserted_by_relation: &[Vec<FactId>],
        bindings: &mut Vec<Option<Sym>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<Sym>], &[FactId]) -> bool,
    {
        if depth == self.steps.len() {
            return sink(bindings, image);
        }
        let step = &self.steps[depth];
        let terms = &encoded[step.atom].terms;
        let columns = db.columns_of(step.relation);
        let mut gallop_scratch = Vec::new();
        let candidates = if depth == pinned {
            inserted_by_relation[step.relation.index()].as_slice()
        } else {
            candidate_facts(
                db,
                index,
                step.relation,
                terms,
                &step.bound_positions,
                bindings,
                &mut gallop_scratch,
            )
        };
        for &fact_id in candidates {
            if !subset.contains(fact_id) {
                continue;
            }
            let row = db.row_of(fact_id);
            let Some(bound_here) = match_and_bind(terms, columns, row, bindings) else {
                continue;
            };
            image.push(fact_id);
            let stop = self.step_delta(
                db,
                index,
                subset,
                encoded,
                depth + 1,
                pinned,
                inserted_by_relation,
                bindings,
                image,
                sink,
            );
            image.pop();
            unbind(terms, bound_here, bindings);
            if stop {
                return true;
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn step<F>(
        &self,
        db: &Database,
        index: &RelationIndex,
        subset: &FactSet,
        encoded: &[SymAtom],
        depth: usize,
        bindings: &mut Vec<Option<Sym>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<Sym>], &[FactId]) -> bool,
    {
        if depth == self.steps.len() {
            return sink(bindings, image);
        }
        let step = &self.steps[depth];
        let terms = &encoded[step.atom].terms;
        let columns = db.columns_of(step.relation);
        let mut gallop_scratch = Vec::new();
        let candidates = candidate_facts(
            db,
            index,
            step.relation,
            terms,
            &step.bound_positions,
            bindings,
            &mut gallop_scratch,
        );
        for &fact_id in candidates {
            if !subset.contains(fact_id) {
                continue;
            }
            let row = db.row_of(fact_id);
            let Some(bound_here) = match_and_bind(terms, columns, row, bindings) else {
                continue;
            };
            image.push(fact_id);
            let stop = self.step(db, index, subset, encoded, depth + 1, bindings, image, sink);
            image.pop();
            unbind(terms, bound_here, bindings);
            if stop {
                return true;
            }
        }
        false
    }
}

/// One step of a [`PlanExplain`] report.
#[derive(Debug, Clone)]
pub struct StepExplain {
    /// Index of the atom in the original query body.
    pub atom: usize,
    /// The relation the step matches against.
    pub relation: RelationId,
    /// Term positions statically bound when the step runs.
    pub bound_positions: Vec<usize>,
    /// The planner's estimated output cardinality for the step; `None`
    /// for structural plans, which consult no statistics.
    pub estimate: Option<f64>,
}

impl StepExplain {
    /// `true` iff the step executes as an indexed lookup (at least one
    /// statically bound position); `false` means a filtered relation scan.
    pub fn is_lookup(&self) -> bool {
        !self.bound_positions.is_empty()
    }
}

/// Introspection report for a [`JoinPlan`], from [`JoinPlan::explain`]:
/// the planned step order with per-step bound positions, access-path kind,
/// and cost estimates.  [`std::fmt::Display`] renders one line per step
/// plus the running (cumulative) estimated intermediate size, so plan
/// regressions show up in plain text diffs.
#[derive(Debug, Clone)]
pub struct PlanExplain {
    steps: Vec<StepExplain>,
}

impl PlanExplain {
    /// The per-step reports, in execution order.
    pub fn steps(&self) -> &[StepExplain] {
        &self.steps
    }
}

impl std::fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut cumulative = 1.0f64;
        for (i, step) in self.steps.iter().enumerate() {
            let kind = if step.is_lookup() {
                format!("lookup{:?}", step.bound_positions)
            } else {
                "scan".to_string()
            };
            write!(
                f,
                "step {i}: atom {} relation {} {kind}",
                step.atom,
                step.relation.index()
            )?;
            match step.estimate {
                Some(estimate) => {
                    cumulative *= estimate.max(1.0);
                    write!(f, " est {estimate:.1} (cumulative {cumulative:.1})")?;
                }
                None => write!(f, " est - (structural)")?,
            }
            if i + 1 < self.steps.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// The cost model of [`JoinPlan::build_costed`]: the estimated output
/// cardinality of executing `atom` next, given the currently bound slots.
///
/// * Base: the *shortest* constant-bound posting run
///   ([`RelationIndex::posting_len`]; a never-interned constant is a
///   provable zero), or the relation cardinality when the atom has no
///   constants (a scan).
/// * Each variable-bound position divides the base by its
///   [`RelationIndex::distinct_count`] — the expected shrink factor of
///   matching a run-time symbol at that position.
/// * Unbound variables are free and contribute nothing.
fn step_estimate(atom: &PlanAtom, bound: &[bool], index: &RelationIndex, dict: &Dictionary) -> f64 {
    let cardinality = index.relation_cardinality(atom.relation) as f64;
    let mut constant_best = f64::INFINITY;
    let mut distinct_product = 1.0f64;
    for (position, term) in atom.terms.iter().enumerate() {
        match term {
            PlanTerm::Const(value) => {
                let run = match dict.lookup(value) {
                    Some(sym) => index.posting_len(atom.relation, position, sym) as f64,
                    // Never-interned constant: provably zero matches.
                    None => 0.0,
                };
                constant_best = constant_best.min(run);
            }
            PlanTerm::Var(slot) if bound[*slot] => {
                distinct_product *= index.distinct_count(atom.relation, position).max(1) as f64;
            }
            PlanTerm::Var(_) => {}
        }
    }
    let base = if constant_best.is_finite() {
        constant_best
    } else {
        cardinality
    };
    base / distinct_product
}

/// An expected-matches cost estimate for tie-breaking in
/// [`JoinPlan::build_with_stats`]: the exact posting length for the best
/// constant-bound position, else relation cardinality divided by the
/// largest distinct count among bound positions, else the cardinality.
fn atom_cost(atom: &PlanAtom, bound: &[bool], index: &RelationIndex, dict: &Dictionary) -> f64 {
    let cardinality = index.relation_cardinality(atom.relation) as f64;
    let mut cost = cardinality;
    for (position, term) in atom.terms.iter().enumerate() {
        let estimate = match term {
            PlanTerm::Const(value) => match dict.lookup(value) {
                Some(sym) => index.posting_len(atom.relation, position, sym) as f64,
                // Never-interned constant: provably zero matches.
                None => 0.0,
            },
            PlanTerm::Var(slot) if bound[*slot] => {
                // The bound symbol is only known at run time; assume the
                // position's average posting length.
                cardinality / index.distinct_count(atom.relation, position).max(1) as f64
            }
            PlanTerm::Var(_) => continue,
        };
        cost = cost.min(estimate);
    }
    cost
}

/// Unifies an atom's encoded terms with one stored row against the current
/// slot bindings.  On success, returns the term positions whose slots were
/// **newly** bound by this frame as a bitmask (pass it to [`unbind`] on
/// backtrack); on mismatch, any partial bindings are rolled back and
/// `None` is returned.
///
/// This is the one definition of the match-and-bind semantics, shared by
/// the plan executor, the bank's scan trie, and the unplanned baseline —
/// so the planned/unplanned witness-set-identity invariant cannot drift.
/// Every comparison is a `u32` symbol compare against the relation's
/// columns; the fact is never materialized.  The bitmask limits atoms to
/// 64 terms, which `QueryEvaluator::new` enforces at construction.
pub(crate) fn match_and_bind(
    terms: &[SymTerm],
    columns: &[Vec<Sym>],
    row: usize,
    bindings: &mut [Option<Sym>],
) -> Option<u64> {
    let mut bound_here: u64 = 0;
    for (position, term) in terms.iter().enumerate() {
        let sym = columns[position][row];
        match term {
            SymTerm::Const(c) => {
                if *c != sym {
                    unbind(terms, bound_here, bindings);
                    return None;
                }
            }
            SymTerm::Var(slot) => match bindings[*slot] {
                Some(bound) => {
                    if bound != sym {
                        unbind(terms, bound_here, bindings);
                        return None;
                    }
                }
                None => {
                    bindings[*slot] = Some(sym);
                    bound_here |= 1 << position;
                }
            },
        }
    }
    Some(bound_here)
}

/// The candidate fact list of one plan (or trie) step: the shortest
/// posting run among the step's statically bound positions, or the whole
/// relation when nothing is bound.  Shared between [`JoinPlan`] execution
/// and the bank's scan trie, which runs the same access logic per node.
///
/// When a second bound run exists and the shortest run is longer than
/// [`GALLOP_THRESHOLD`], the two shortest runs are intersected into
/// `scratch` with a galloping merge first — the intersection is an
/// order-preserving subset of the shortest run (dropped ids would have
/// failed the dropped position's symbol check in [`match_and_bind`]), so
/// enumeration order, and hence every witness set, is unchanged.
pub(crate) fn candidate_facts<'c>(
    db: &'c Database,
    index: &'c RelationIndex,
    relation: RelationId,
    terms: &[SymTerm],
    bound_positions: &[usize],
    bindings: &[Option<Sym>],
    scratch: &'c mut Vec<FactId>,
) -> &'c [FactId] {
    if bound_positions.is_empty() {
        return db.facts_of(relation);
    }
    let mut best: Option<&'c [FactId]> = None;
    let mut second: Option<&'c [FactId]> = None;
    for &position in bound_positions {
        let sym: Sym = match &terms[position] {
            SymTerm::Const(c) => *c,
            // Invariant, not user-reachable: `bound_positions` only lists
            // positions whose slots the plan has already bound.
            SymTerm::Var(slot) => bindings[*slot].expect("planner guarantees this slot is bound"),
        };
        let posting = index.matches(relation, position, sym);
        match best {
            Some(b) if posting.len() >= b.len() => {
                if second.is_none_or(|s| posting.len() < s.len()) {
                    second = Some(posting);
                }
            }
            _ => {
                second = best;
                best = Some(posting);
            }
        }
        if posting.is_empty() {
            break;
        }
    }
    // Invariant, not user-reachable: the early return above handles the
    // empty case, so the loop assigned `best` at least once.
    let best = best.expect("bound_positions is non-empty");
    if let Some(second) = second {
        if best.len() > GALLOP_THRESHOLD && !second.is_empty() {
            scratch.clear();
            intersect_postings(best, second, scratch);
            return scratch;
        }
    }
    best
}

/// Clears the bindings introduced by one frame, identified by the term
/// positions recorded in `bound_here`.
pub(crate) fn unbind(terms: &[SymTerm], bound_here: u64, bindings: &mut [Option<Sym>]) {
    let mut mask = bound_here;
    while mask != 0 {
        let position = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        if let SymTerm::Var(slot) = &terms[position] {
            bindings[*slot] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::QueryEvaluator;
    use ucqa_db::Schema;

    fn graph_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("E", &["S", "T"]).unwrap();
        let mut db = Database::with_schema(schema);
        for node in ["u", "v", "w"] {
            db.insert_values("V", [Value::str(node), Value::int(0)])
                .unwrap();
        }
        db.insert_values("E", [Value::str("u"), Value::str("v")])
            .unwrap();
        db
    }

    #[test]
    fn constants_and_join_chains_order_by_bound_coverage() {
        let db = graph_db();
        // Written order: unbound scan first, then a constant atom.  The
        // planner flips them: the constant atom has coverage 1 at step
        // one, then binds x so E(x, y) becomes an indexed lookup.
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V('u', z)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(order, vec![1, 0]);
        // V('u', z) has a constant; E(x, y) stays a scan (x is not bound
        // by the V atom).
        assert_eq!(evaluator.plan().indexed_steps(), 1);
    }

    #[test]
    fn ties_preserve_the_written_order() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V('u', a), V('v', b), V('w', c)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(evaluator.plan().indexed_steps(), 3);
    }

    #[test]
    fn answer_slots_count_as_bound_in_the_answer_plan() {
        let db = graph_db();
        // Free plan: both atoms start unbound, written order stays.  With
        // x prebound (candidate-driven), E(x, y) becomes the first,
        // indexed step.
        let q = parse_query(db.schema(), "Ans(x) :- V(z, c), E(x, y), V(x, c)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let answer_order: Vec<usize> = evaluator.answer_plan().atom_order().collect();
        assert_eq!(
            answer_order[0], 1,
            "the x-bound atom leads: {answer_order:?}"
        );
        assert!(evaluator.answer_plan().indexed_steps() >= 2);
    }

    #[test]
    fn a_later_higher_coverage_atom_always_beats_the_first_atom() {
        // Crafted body with strictly increasing coverage left to right:
        // E(x, y) covers 0, V('u', a) covers 1, E('u', 'v') covers 2.  With
        // no statistics every cost is 0.0, so only coverage (then body
        // order) decides — the first atom must not win by virtue of
        // seeding the comparison.
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V('u', a), E('u', 'v')").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn costed_plans_prefer_a_cheap_scan_over_an_expensive_lookup() {
        // V('hot', z) is an indexed lookup but walks a 3-fact posting run;
        // W(x, y) is a scan of a 1-fact relation.  Coverage-greedy leads
        // with the lookup; the cost model leads with the cheaper scan.
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("W", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for i in 0..3 {
            db.insert_values("V", [Value::str("hot"), Value::int(i)])
                .unwrap();
        }
        db.insert_values("W", [Value::int(7), Value::int(8)])
            .unwrap();
        let q = parse_query(db.schema(), "Ans() :- V('hot', z), W(x, y)").unwrap();
        let structural = QueryEvaluator::new(q.clone());
        assert_eq!(
            structural.plan().atom_order().collect::<Vec<_>>(),
            vec![0, 1]
        );
        let costed = QueryEvaluator::with_stats(q, &db).unwrap();
        assert_eq!(costed.plan().atom_order().collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    fn explain_reports_estimates_kinds_and_bound_positions() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V('u', z)").unwrap();
        let structural = QueryEvaluator::new(q.clone()).plan().explain();
        assert_eq!(structural.steps().len(), 2);
        assert!(structural.steps().iter().all(|s| s.estimate.is_none()));
        assert!(format!("{structural}").contains("structural"));
        let costed = QueryEvaluator::with_stats(q, &db).unwrap().plan().explain();
        // V('u', z) leads: a lookup on position 0 with posting length 1.
        assert_eq!(costed.steps()[0].atom, 1);
        assert!(costed.steps()[0].is_lookup());
        assert_eq!(costed.steps()[0].bound_positions, vec![0]);
        assert_eq!(costed.steps()[0].estimate, Some(1.0));
        // E(x, y) stays a scan over the single edge.
        assert!(!costed.steps()[1].is_lookup());
        assert_eq!(costed.steps()[1].estimate, Some(1.0));
        let rendered = format!("{costed}");
        assert!(rendered.contains("lookup[0]"), "{rendered}");
        assert!(rendered.contains("scan"), "{rendered}");
        assert!(rendered.contains("est 1.0"), "{rendered}");
    }

    #[test]
    fn stats_tie_break_prefers_the_shorter_posting() {
        // V('hot', x) (posting length 3) vs V('cold', y) (posting length
        // 1): same coverage, so the default plan keeps the written order
        // while the stats-aware plan leads with the rarer constant.
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        let mut db = Database::with_schema(schema);
        for i in 0..3 {
            db.insert_values("V", [Value::str("hot"), Value::int(i)])
                .unwrap();
        }
        db.insert_values("V", [Value::str("cold"), Value::int(9)])
            .unwrap();
        let q = parse_query(db.schema(), "Ans() :- V('hot', x), V('cold', y)").unwrap();
        let evaluator = QueryEvaluator::new(q.clone());
        let default_order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(default_order, vec![0, 1]);
        let stats = QueryEvaluator::with_stats(q, &db).unwrap();
        let stats_order: Vec<usize> = stats.plan().atom_order().collect();
        assert_eq!(stats_order, vec![1, 0]);
    }

    #[test]
    fn stats_plan_enumerates_the_same_witnesses() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V(x, c), E(x, y), V(y, c)").unwrap();
        let default = QueryEvaluator::new(q.clone());
        let stats = QueryEvaluator::with_stats(q, &db).unwrap();
        let subset = db.all_facts();
        let mut a = default.homomorphisms(&db, &subset, None);
        let mut b = stats.homomorphisms(&db, &subset, None);
        a.sort_by(|x, y| x.bindings.cmp(&y.bindings));
        b.sort_by(|x, y| x.bindings.cmp(&y.bindings));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn encoding_fails_only_for_unknown_constants() {
        let db = graph_db();
        let known = PlanAtom {
            relation: db.schema().relation_id("V").unwrap(),
            terms: vec![PlanTerm::Const(Value::str("u")), PlanTerm::Var(0)],
        };
        let unknown = PlanAtom {
            relation: db.schema().relation_id("V").unwrap(),
            terms: vec![PlanTerm::Const(Value::str("zzz")), PlanTerm::Var(0)],
        };
        let dict = db.dictionary();
        let encoded = SymAtom::encode(&known, dict).unwrap();
        assert_eq!(encoded.terms[1], SymTerm::Var(0));
        assert!(matches!(encoded.terms[0], SymTerm::Const(_)));
        assert!(SymAtom::encode(&unknown, dict).is_none());
        assert!(SymAtom::encode_all(&[known, unknown], dict).is_none());
    }
}
