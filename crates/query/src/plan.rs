//! Selectivity-ordered join plans for witness enumeration.
//!
//! The slot-compiled backtracking evaluator of [`crate::eval`] joins the
//! query atoms **in the order they were written**, scanning the whole
//! relation at every step.  That is fine for entailment checks on sampled
//! repairs (the compiled-lineage bitsets took that job over in PR 1), but
//! witness *enumeration* — the compile step behind every
//! [`crate::CompiledLineage`] and [`crate::LineageBank`] entry — still ran
//! one naive pass per `(query, candidate)`.  This module turns enumeration
//! into a plan-based pipeline:
//!
//! * **Atom order** is chosen greedily by *bound coverage*: at each step
//!   the planner picks the atom with the most bound terms (constants plus
//!   variables bound by earlier steps, plus prebound answer slots), ties
//!   broken by the original body order.  Bound-late atoms become indexed
//!   lookups instead of cross products.
//! * **Access paths**: a step with at least one bound position is executed
//!   as an **indexed lookup** against the database's [`RelationIndex`] —
//!   at run time the executor probes every statically bound position and
//!   walks the *shortest* posting list; a step with no bound position
//!   falls back to a filtered scan of the relation.
//! * **No per-step allocation**: the executor recurses over borrowed
//!   posting slices with the caller-owned slot bindings and image buffers
//!   of the evaluator; nothing is heap-allocated per step.
//!
//! The planner is purely structural (it only needs the query), so a
//! [`JoinPlan`] is built once per [`crate::QueryEvaluator`] and reused for
//! every database subset.  [`LineageBank::compile`](crate::LineageBank)
//! goes one step further and factors the *shared prefixes* of many planned
//! queries into one scan trie — see [`crate::bank`].

use ucqa_db::{Database, Fact, FactId, FactSet, RelationId, RelationIndex, Value};

/// An atom term resolved against the evaluator's interned variable slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTerm {
    /// A constant that the fact value must equal.
    Const(Value),
    /// A variable, identified by its slot index.
    Var(usize),
}

/// An atom with terms resolved to slots — the planner's (and the shared
/// scan trie's) unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanAtom {
    /// The atom's relation.
    pub relation: RelationId,
    /// The atom's terms, in positional order.
    pub terms: Vec<PlanTerm>,
}

impl PlanAtom {
    /// The term positions that are bound when `bound[slot]` marks the
    /// already-bound variable slots: constants, plus bound variables.
    pub(crate) fn bound_positions(&self, bound: &[bool]) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, term)| match term {
                PlanTerm::Const(_) => true,
                PlanTerm::Var(slot) => bound[*slot],
            })
            .map(|(position, _)| position)
            .collect()
    }
}

/// One step of a [`JoinPlan`]: match one atom against the sub-database,
/// extending the current slot bindings.
#[derive(Debug, Clone)]
struct PlanStep {
    /// Index of the atom in the original query body.
    atom: usize,
    relation: RelationId,
    terms: Vec<PlanTerm>,
    /// Term positions guaranteed bound when this step runs (constants and
    /// variables bound by earlier steps / prebinding).  Non-empty ⇒ the
    /// step executes as an indexed lookup.
    bound_positions: Vec<usize>,
}

/// A selectivity-ordered join plan over the atoms of one query.
///
/// Built once per [`crate::QueryEvaluator`] (one plan for free
/// enumeration, one with the answer slots treated as prebound for
/// candidate-driven enumeration) and executed against any sub-database.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    steps: Vec<PlanStep>,
}

impl JoinPlan {
    /// Plans `atoms` greedily by bound coverage.  `slot_count` is the
    /// number of interned variable slots; `prebound_slots` lists the slots
    /// that will be bound before execution starts (the answer slots of a
    /// candidate-driven run, empty for free enumeration).
    pub fn build(atoms: &[PlanAtom], slot_count: usize, prebound_slots: &[usize]) -> Self {
        let mut bound = vec![false; slot_count];
        for &slot in prebound_slots {
            bound[slot] = true;
        }
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        let mut steps = Vec::with_capacity(atoms.len());
        while !remaining.is_empty() {
            // Max bound coverage; ties go to the earliest body atom, so
            // queries sharing a written prefix keep sharing it after
            // planning (which is what lets the bank trie factor it).
            let mut best = 0;
            let mut best_coverage = 0;
            for (i, &atom) in remaining.iter().enumerate() {
                let coverage = atoms[atom].bound_positions(&bound).len();
                if i == 0 || coverage > best_coverage {
                    best = i;
                    best_coverage = coverage;
                }
            }
            let atom = remaining.remove(best);
            let bound_positions = atoms[atom].bound_positions(&bound);
            for term in &atoms[atom].terms {
                if let PlanTerm::Var(slot) = term {
                    bound[*slot] = true;
                }
            }
            steps.push(PlanStep {
                atom,
                relation: atoms[atom].relation,
                terms: atoms[atom].terms.clone(),
                bound_positions,
            });
        }
        JoinPlan { steps }
    }

    /// The planned atom order, as indices into the original query body.
    pub fn atom_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.steps.iter().map(|step| step.atom)
    }

    /// Number of steps that execute as indexed lookups (at least one
    /// statically bound position).  The remaining
    /// `len − indexed_steps` steps are filtered relation scans.
    pub fn indexed_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|step| !step.bound_positions.is_empty())
            .count()
    }

    /// Number of plan steps (= number of body atoms).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the plan has no steps (empty query body).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the plan against `subset ⊆ db`, invoking `sink` at every
    /// full match with the slot bindings and the (unsorted, possibly
    /// duplicated) image.  The sink returns `true` to stop; the overall
    /// return value is `true` iff the run was stopped.
    ///
    /// `bindings` must have one entry per slot; prebound slots must
    /// already be filled.  Performs no heap allocation besides the
    /// amortised `image` pushes.
    pub(crate) fn run<'d, F>(
        &self,
        db: &'d Database,
        index: &RelationIndex,
        subset: &FactSet,
        bindings: &mut Vec<Option<&'d Value>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<&'d Value>], &[FactId]) -> bool,
    {
        self.step(db, index, subset, 0, bindings, image, sink)
    }

    #[allow(clippy::too_many_arguments)]
    fn step<'d, F>(
        &self,
        db: &'d Database,
        index: &RelationIndex,
        subset: &FactSet,
        depth: usize,
        bindings: &mut Vec<Option<&'d Value>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<&'d Value>], &[FactId]) -> bool,
    {
        if depth == self.steps.len() {
            return sink(bindings, image);
        }
        let step = &self.steps[depth];
        let candidates = candidate_facts(
            db,
            index,
            step.relation,
            &step.terms,
            &step.bound_positions,
            bindings,
        );
        for &fact_id in candidates {
            if !subset.contains(fact_id) {
                continue;
            }
            let Some(bound_here) = match_and_bind(&step.terms, db.fact(fact_id), bindings) else {
                continue;
            };
            image.push(fact_id);
            let stop = self.step(db, index, subset, depth + 1, bindings, image, sink);
            image.pop();
            unbind(&step.terms, bound_here, bindings);
            if stop {
                return true;
            }
        }
        false
    }
}

/// Unifies an atom's terms with a fact's values against the current slot
/// bindings.  On success, returns the term positions whose slots were
/// **newly** bound by this frame as a bitmask (pass it to [`unbind`] on
/// backtrack); on mismatch, any partial bindings are rolled back and
/// `None` is returned.
///
/// This is the one definition of the match-and-bind semantics, shared by
/// the plan executor, the bank's scan trie, and the unplanned baseline —
/// so the planned/unplanned witness-set-identity invariant cannot drift.
/// The bitmask limits atoms to 64 terms, which `QueryEvaluator::new`
/// enforces at construction.
pub(crate) fn match_and_bind<'d>(
    terms: &[PlanTerm],
    fact: &'d Fact,
    bindings: &mut [Option<&'d Value>],
) -> Option<u64> {
    let mut bound_here: u64 = 0;
    for (position, (term, value)) in terms.iter().zip(fact.values()).enumerate() {
        match term {
            PlanTerm::Const(c) => {
                if c != value {
                    unbind(terms, bound_here, bindings);
                    return None;
                }
            }
            PlanTerm::Var(slot) => match bindings[*slot] {
                Some(bound) => {
                    if bound != value {
                        unbind(terms, bound_here, bindings);
                        return None;
                    }
                }
                None => {
                    bindings[*slot] = Some(value);
                    bound_here |= 1 << position;
                }
            },
        }
    }
    Some(bound_here)
}

/// The candidate fact list of one plan (or trie) step: the shortest
/// posting list among the step's statically bound positions, or the whole
/// relation when nothing is bound.  Shared between [`JoinPlan`] execution
/// and the bank's scan trie, which runs the same access logic per node.
pub(crate) fn candidate_facts<'c>(
    db: &'c Database,
    index: &'c RelationIndex,
    relation: RelationId,
    terms: &[PlanTerm],
    bound_positions: &[usize],
    bindings: &[Option<&Value>],
) -> &'c [FactId] {
    if bound_positions.is_empty() {
        return db.facts_of(relation);
    }
    let mut best: Option<&'c [FactId]> = None;
    for &position in bound_positions {
        let value: &Value = match &terms[position] {
            PlanTerm::Const(c) => c,
            // Invariant, not user-reachable: `bound_positions` only lists
            // positions whose slots the plan has already bound.
            PlanTerm::Var(slot) => bindings[*slot].expect("planner guarantees this slot is bound"),
        };
        let posting = index.matches(relation, position, value);
        if best.is_none_or(|b| posting.len() < b.len()) {
            best = Some(posting);
        }
        if posting.is_empty() {
            break;
        }
    }
    // Invariant, not user-reachable: the early return above handles the
    // empty case, so the loop assigned `best` at least once.
    best.expect("bound_positions is non-empty")
}

/// Clears the bindings introduced by one frame, identified by the term
/// positions recorded in `bound_here`.
pub(crate) fn unbind(terms: &[PlanTerm], bound_here: u64, bindings: &mut [Option<&Value>]) {
    let mut mask = bound_here;
    while mask != 0 {
        let position = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        if let PlanTerm::Var(slot) = &terms[position] {
            bindings[*slot] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::QueryEvaluator;
    use ucqa_db::Schema;

    fn graph_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("E", &["S", "T"]).unwrap();
        let mut db = Database::with_schema(schema);
        for node in ["u", "v", "w"] {
            db.insert_values("V", [Value::str(node), Value::int(0)])
                .unwrap();
        }
        db.insert_values("E", [Value::str("u"), Value::str("v")])
            .unwrap();
        db
    }

    #[test]
    fn constants_and_join_chains_order_by_bound_coverage() {
        let db = graph_db();
        // Written order: unbound scan first, then a constant atom.  The
        // planner flips them: the constant atom has coverage 1 at step
        // one, then binds x so E(x, y) becomes an indexed lookup.
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V('u', z)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(order, vec![1, 0]);
        // V('u', z) has a constant; E(x, y) stays a scan (x is not bound
        // by the V atom).
        assert_eq!(evaluator.plan().indexed_steps(), 1);
    }

    #[test]
    fn ties_preserve_the_written_order() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V('u', a), V('v', b), V('w', c)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let order: Vec<usize> = evaluator.plan().atom_order().collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(evaluator.plan().indexed_steps(), 3);
    }

    #[test]
    fn answer_slots_count_as_bound_in_the_answer_plan() {
        let db = graph_db();
        // Free plan: both atoms start unbound, written order stays.  With
        // x prebound (candidate-driven), E(x, y) becomes the first,
        // indexed step.
        let q = parse_query(db.schema(), "Ans(x) :- V(z, c), E(x, y), V(x, c)").unwrap();
        let evaluator = QueryEvaluator::new(q);
        let answer_order: Vec<usize> = evaluator.answer_plan().atom_order().collect();
        assert_eq!(
            answer_order[0], 1,
            "the x-bound atom leads: {answer_order:?}"
        );
        assert!(evaluator.answer_plan().indexed_steps() >= 2);
    }
}
