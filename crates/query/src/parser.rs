//! A small textual parser for conjunctive queries.
//!
//! Syntax (close to the paper's notation):
//!
//! ```text
//! Ans(x, y) :- E(x, y), V(x, z), T('one'), S(42)
//! ```
//!
//! * Bare identifiers (`x`, `y`, `z`, …) are **variables**.
//! * Single- or double-quoted tokens (`'a1'`, `"Alice"`) are **string
//!   constants**.
//! * Integer literals (`42`, `-7`) are **integer constants**.
//! * The head may be written `Ans()` (or omitted entirely with a leading
//!   `:-`) for Boolean queries.

use ucqa_db::{Schema, Value};

use crate::{Atom, ConjunctiveQuery, QueryError, Term, Variable};

/// Parses a conjunctive query from its textual representation.
pub fn parse_query(schema: &Schema, input: &str) -> Result<ConjunctiveQuery, QueryError> {
    Parser::new(input).parse(schema)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            message: message.into(),
            position: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), QueryError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn parse_identifier(&mut self) -> Result<&'a str, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected an identifier"));
        }
        let ident = &rest[..end];
        self.pos += end;
        Ok(ident)
    }

    fn parse_term(&mut self) -> Result<Term, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let first = rest
            .chars()
            .next()
            .ok_or_else(|| self.error("expected a term"))?;
        if first == '\'' || first == '"' {
            let quote = first;
            let inner = &rest[1..];
            let close = inner
                .find(quote)
                .ok_or_else(|| self.error("unterminated string constant"))?;
            let text = &inner[..close];
            self.pos += close + 2;
            return Ok(Term::Const(Value::str(text)));
        }
        if first.is_ascii_digit() || first == '-' {
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, c)| !c.is_ascii_digit())
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let literal = &rest[..end];
            let value: i64 = literal
                .parse()
                .map_err(|_| self.error(format!("invalid integer literal `{literal}`")))?;
            self.pos += end;
            return Ok(Term::Const(Value::int(value)));
        }
        let ident = self.parse_identifier()?;
        Ok(Term::Var(Variable::new(ident)))
    }

    fn parse_term_list(&mut self) -> Result<Vec<Term>, QueryError> {
        self.expect("(")?;
        let mut terms = Vec::new();
        self.skip_ws();
        if self.eat(")") {
            return Ok(terms);
        }
        loop {
            terms.push(self.parse_term()?);
            self.skip_ws();
            if self.eat(")") {
                return Ok(terms);
            }
            self.expect(",")?;
        }
    }

    fn parse(&mut self, schema: &Schema) -> Result<ConjunctiveQuery, QueryError> {
        self.skip_ws();
        // Head: either "Ans(...) :-" (any head predicate name is accepted)
        // or a bare ":-" for Boolean queries.
        let answer_vars = if self.rest().starts_with(":-") {
            Vec::new()
        } else {
            let _head_name = self.parse_identifier()?;
            let head_terms = self.parse_term_list()?;
            let mut vars = Vec::with_capacity(head_terms.len());
            for term in head_terms {
                match term {
                    Term::Var(v) => vars.push(v),
                    Term::Const(c) => {
                        return Err(
                            self.error(format!("constants (`{c}`) are not allowed in the head"))
                        )
                    }
                }
            }
            vars
        };
        self.expect(":-")?;

        let mut atoms = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().is_empty() {
                break;
            }
            let name = self.parse_identifier()?;
            let relation = schema.relation_id(name)?;
            let terms = self.parse_term_list()?;
            atoms.push(Atom::new(relation, terms));
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        if !self.rest().is_empty() {
            return Err(self.error("unexpected trailing input"));
        }
        ConjunctiveQuery::new(schema, answer_vars, atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("E", &["S", "T"]).unwrap();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("T", &["X"]).unwrap();
        schema
    }

    #[test]
    fn parse_paper_query() {
        // The query of Theorem 5.1(1): Ans() :- E(x,y), V(x,z), V(y,z), T(z).
        let schema = schema();
        let q = parse_query(&schema, "Ans() :- E(x, y), V(x, z), V(y, z), T(z)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atom_count(), 4);
        assert_eq!(q.variables().len(), 3);
    }

    #[test]
    fn parse_with_answer_variables_and_constants() {
        let schema = schema();
        let q = parse_query(&schema, "Ans(x) :- V(x, 'b1'), T(1)").unwrap();
        assert_eq!(q.answer_vars().len(), 1);
        assert_eq!(q.constants().len(), 2);
        assert_eq!(q.display(&schema).to_string(), "Ans(x) :- V(x, b1), T(1)");
    }

    #[test]
    fn parse_bare_boolean_form() {
        let schema = schema();
        let q = parse_query(&schema, ":- T(0)").unwrap();
        assert!(q.is_boolean());
        assert!(q.is_atomic());
    }

    #[test]
    fn parse_negative_integer() {
        let schema = schema();
        let q = parse_query(&schema, "Ans() :- V(x, -5)").unwrap();
        assert!(q.constants().contains(&Value::int(-5)));
    }

    #[test]
    fn parse_errors_are_reported() {
        let schema = schema();
        assert!(matches!(
            parse_query(&schema, "Ans(x) :- Unknown(x)"),
            Err(QueryError::Db(_))
        ));
        assert!(matches!(
            parse_query(&schema, "Ans(x) :- E(x"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_query(&schema, "Ans(x) :- E(x, 'unterminated)"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_query(&schema, "Ans(1) :- E(x, y)"),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_query(&schema, "Ans(z) :- E(x, y)"),
            Err(QueryError::UnsafeAnswerVariable { .. })
        ));
        assert!(matches!(
            parse_query(&schema, "Ans() :- E(x, y) garbage"),
            Err(QueryError::Parse { .. })
        ));
    }
}
