//! Error types for query construction, parsing and evaluation.

use std::fmt;

use ucqa_db::DbError;

/// Errors raised while constructing, parsing, or evaluating conjunctive
/// queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An answer variable does not occur in any body atom.
    UnsafeAnswerVariable {
        /// The name of the unsafe variable.
        variable: String,
    },
    /// An atom references a relation that is not part of the schema, or has
    /// the wrong arity.
    Db(DbError),
    /// The query text could not be parsed.
    Parse {
        /// Human-readable description of the parse failure.
        message: String,
        /// Byte offset in the input where the failure was detected.
        position: usize,
    },
    /// A candidate answer tuple has the wrong arity for the query.
    AnswerArityMismatch {
        /// Number of answer variables of the query.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// The query is syntactically valid but outside the supported
    /// fragment (e.g. an atom with more than 64 terms).
    Unsupported {
        /// Human-readable description of the unsupported construct.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeAnswerVariable { variable } => write!(
                f,
                "answer variable `{variable}` does not occur in the query body"
            ),
            QueryError::Db(e) => write!(f, "{e}"),
            QueryError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::AnswerArityMismatch { expected, actual } => write!(
                f,
                "query has {expected} answer variables but {actual} values were supplied"
            ),
            QueryError::Unsupported { message } => write!(f, "unsupported query: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<DbError> for QueryError {
    fn from(e: DbError) -> Self {
        QueryError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = QueryError::UnsafeAnswerVariable {
            variable: "x".into(),
        };
        assert!(e.to_string().contains('x'));
        let e = QueryError::Parse {
            message: "expected `)`".into(),
            position: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
