//! A bank of compiled lineages: many queries, one shared witness arena.
//!
//! The batched FPRAS drivers of `ucqa-core` estimate `k` queries over the
//! **same** database by sampling each operational repair once and checking
//! it against every query.  Compiling `k` independent
//! [`CompiledLineage`]s would re-materialise shared witnesses (identical
//! queries, overlapping joins) and re-scan them per query;
//! [`LineageBank`] instead compiles all `(query, candidate)` pairs into
//! one deduplicated arena of witness bitsets.  Each query keeps a bitmask
//! over the arena selecting its own minimal antichain, so the per-sample
//! batched check is:
//!
//! 1. one containment scan over the *distinct* witnesses (word-level
//!    "witness ⊆ repair", each checked exactly once per draw), then
//! 2. one word-level `mask ∧ contained ≠ 0` pass per query.
//!
//! Per-query booleans are **bit-identical** to `CompiledLineage::entails`
//! on the same repair: the mask selects exactly the query's own antichain,
//! so sharing changes the cost, never the outcome.  Queries whose witness
//! enumeration overflows the cap are kept as [fallback](LineageBank::is_fallback)
//! entries — the caller routes those through the backtracking evaluator
//! while the rest of the bank stays on the bitset path.
//!
//! The adaptive batched estimators *retire* queries as they converge;
//! [`BankLiveSet`] tracks the live subset of a bank with a reference
//! count per arena witness, so that witnesses referenced only by retired
//! queries drop out of the per-draw containment scan
//! ([`LineageBank::evaluate_live_into`]) and the per-draw cost shrinks as
//! the bank drains.

use std::collections::HashMap;

use ucqa_db::{Database, FactSet, Value};

use crate::lineage::DEFAULT_WITNESS_CAP;
use crate::{CompiledLineage, QueryError, QueryEvaluator};

/// One query of a bank entry: an evaluator plus the candidate tuple.
pub type BankQueryRef<'q> = (&'q QueryEvaluator, &'q [Value]);

/// How one bank entry answers the per-sample check.
#[derive(Debug, Clone)]
enum BankEntry {
    /// Minimal-antichain witnesses, as a bitmask over the shared arena.
    Compiled { mask: Vec<u64> },
    /// Witness enumeration overflowed the cap; the caller must use the
    /// backtracking evaluator for this query.
    Fallback,
}

/// Reusable per-draw scratch of [`LineageBank::evaluate_into`]: one bit per
/// arena witness ("is this witness contained in the current repair?").
#[derive(Debug, Default, Clone)]
pub struct BankScratch {
    contained: Vec<u64>,
}

impl BankScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        BankScratch::default()
    }
}

/// Many compiled lineages over one database, sharing a deduplicated
/// witness arena.
#[derive(Debug, Clone)]
pub struct LineageBank {
    universe: usize,
    /// The arena: every *distinct* witness across all compiled entries,
    /// stored once.
    witnesses: Vec<FactSet>,
    entries: Vec<BankEntry>,
}

impl LineageBank {
    /// Compiles a bank over `db` with the default per-query witness cap
    /// ([`DEFAULT_WITNESS_CAP`], the same cap as single-query
    /// compilation, so a query falls back in the bank iff it falls back
    /// standalone).
    ///
    /// Candidate arities are validated for **every** query before any
    /// sampling can start; the first mismatch aborts compilation.
    pub fn compile(db: &Database, queries: &[BankQueryRef<'_>]) -> Result<Self, QueryError> {
        Self::compile_with_cap(db, queries, DEFAULT_WITNESS_CAP)
    }

    /// As [`LineageBank::compile`], with an explicit per-query witness cap.
    pub fn compile_with_cap(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
    ) -> Result<Self, QueryError> {
        let universe = db.len();
        let mut witnesses: Vec<FactSet> = Vec::new();
        let mut arena_index: HashMap<FactSet, usize> = HashMap::new();
        let mut entries = Vec::with_capacity(queries.len());
        for &(evaluator, candidate) in queries {
            match CompiledLineage::compile_with_cap(evaluator, db, candidate, cap)? {
                None => entries.push(BankEntry::Fallback),
                Some(lineage) => {
                    let mut mask = Vec::new();
                    for witness in lineage.witnesses() {
                        // Probe before cloning: witnesses shared with an
                        // earlier query cost a lookup, not an allocation.
                        let index = match arena_index.get(witness) {
                            Some(&index) => index,
                            None => {
                                let index = witnesses.len();
                                arena_index.insert(witness.clone(), index);
                                witnesses.push(witness.clone());
                                index
                            }
                        };
                        let word = index / 64;
                        if mask.len() <= word {
                            mask.resize(word + 1, 0u64);
                        }
                        mask[word] |= 1u64 << (index % 64);
                    }
                    entries.push(BankEntry::Compiled { mask });
                }
            }
        }
        Ok(LineageBank {
            universe,
            witnesses,
            entries,
        })
    }

    /// The per-draw batched entailment check: writes, for every query `i`,
    /// `hits[i] = (repair ⊨ Qᵢ(c̄ᵢ))` — except for fallback entries, which
    /// are set to `false` and must be answered by the caller's evaluator
    /// (see [`LineageBank::is_fallback`]).
    ///
    /// Performs no heap allocation once `scratch` reaches steady-state
    /// capacity.  Each distinct witness is containment-checked exactly
    /// once, no matter how many queries share it.
    ///
    /// # Panics
    /// Panics if `hits.len()` differs from the number of queries.
    pub fn evaluate_into(&self, repair: &FactSet, scratch: &mut BankScratch, hits: &mut [bool]) {
        assert_eq!(hits.len(), self.entries.len(), "hits length mismatch");
        debug_assert_eq!(repair.universe(), self.universe);
        let words = self.witnesses.len().div_ceil(64);
        scratch.contained.clear();
        scratch.contained.resize(words, 0);
        for (index, witness) in self.witnesses.iter().enumerate() {
            if repair.contains_all(witness) {
                scratch.contained[index / 64] |= 1u64 << (index % 64);
            }
        }
        for (entry, hit) in self.entries.iter().zip(hits.iter_mut()) {
            *hit = match entry {
                BankEntry::Compiled { mask } => {
                    mask.iter().zip(&scratch.contained).any(|(m, c)| m & c != 0)
                }
                BankEntry::Fallback => false,
            };
        }
    }

    /// Number of queries in the bank.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the bank holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of *distinct* witnesses in the shared arena.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }

    /// Number of witnesses of query `index`'s own minimal antichain, or
    /// `None` for a fallback entry.
    pub fn query_witness_count(&self, index: usize) -> Option<usize> {
        match &self.entries[index] {
            BankEntry::Compiled { mask } => {
                Some(mask.iter().map(|w| w.count_ones() as usize).sum())
            }
            BankEntry::Fallback => None,
        }
    }

    /// `true` iff query `index` overflowed the witness cap and must be
    /// answered by the backtracking evaluator.
    pub fn is_fallback(&self, index: usize) -> bool {
        matches!(self.entries[index], BankEntry::Fallback)
    }

    /// `true` iff some entry is a fallback entry.
    pub fn has_fallback(&self) -> bool {
        (0..self.entries.len()).any(|i| self.is_fallback(i))
    }

    /// The size of the fact universe the bank ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The arena witness indices referenced by entry `index`'s mask
    /// (empty for fallback entries).
    fn entry_witnesses(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        let mask: &[u64] = match &self.entries[index] {
            BankEntry::Compiled { mask } => mask,
            BankEntry::Fallback => &[],
        };
        mask.iter().enumerate().flat_map(|(word, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word * 64 + bit)
            })
        })
    }

    /// As [`LineageBank::evaluate_into`], restricted to the live queries
    /// of `live`: writes `hits[q]` for every live query `q` (fallback
    /// entries are set to `false` as usual) and **skips** both retired
    /// queries and the arena witnesses no live query references.
    ///
    /// On the live entries the booleans are bit-identical to
    /// [`LineageBank::evaluate_into`]: a live query's witnesses all carry a
    /// positive reference count, so compaction changes the cost of the
    /// containment scan, never its outcome.  Entries of retired queries
    /// are left untouched (they may hold stale values).
    ///
    /// # Panics
    /// Panics if `hits.len()` differs from the number of queries, or if
    /// `live` was built for a different bank shape.
    pub fn evaluate_live_into(
        &self,
        live: &BankLiveSet,
        repair: &FactSet,
        scratch: &mut BankScratch,
        hits: &mut [bool],
    ) {
        assert_eq!(hits.len(), self.entries.len(), "hits length mismatch");
        assert_eq!(
            live.witness_refs.len(),
            self.witnesses.len(),
            "live set was built for a different bank"
        );
        debug_assert_eq!(repair.universe(), self.universe);
        let words = self.witnesses.len().div_ceil(64);
        scratch.contained.clear();
        scratch.contained.resize(words, 0);
        for &index in &live.live_witnesses {
            if repair.contains_all(&self.witnesses[index]) {
                scratch.contained[index / 64] |= 1u64 << (index % 64);
            }
        }
        for &query in &live.live_entries {
            hits[query] = match &self.entries[query] {
                BankEntry::Compiled { mask } => {
                    mask.iter().zip(&scratch.contained).any(|(m, c)| m & c != 0)
                }
                BankEntry::Fallback => false,
            };
        }
    }
}

/// The live subset of a [`LineageBank`] under retirement: which queries
/// are still being estimated, and — via a reference count per arena
/// witness — which *distinct* witnesses some live query still references.
///
/// The adaptive batched estimators retire a query the moment it converges;
/// [`BankLiveSet::retire`] decrements the reference counts of the retired
/// query's witnesses and drops the ones reaching zero from the live scan
/// list, so the per-draw containment scan of
/// [`LineageBank::evaluate_live_into`] only ever pays for witnesses that
/// can still decide a live query.  Witnesses shared with a live query stay
/// in the scan until their last referent retires.
#[derive(Debug, Clone)]
pub struct BankLiveSet {
    /// Live query indices, in arbitrary order (dense, swap-removed).
    live_entries: Vec<usize>,
    /// Position of each query in `live_entries`, `usize::MAX` once retired.
    entry_pos: Vec<usize>,
    /// How many live queries reference each arena witness.
    witness_refs: Vec<u32>,
    /// Arena indices with a positive reference count (dense, swap-removed).
    live_witnesses: Vec<usize>,
    /// Position of each witness in `live_witnesses`, `usize::MAX` when dead.
    witness_pos: Vec<usize>,
}

impl BankLiveSet {
    /// A live set with **every** query of `bank` live.
    pub fn full(bank: &LineageBank) -> Self {
        let all: Vec<usize> = (0..bank.len()).collect();
        Self::restrict(bank, &all)
    }

    /// A live set with exactly the queries of `live` live (used by the
    /// round-based parallel estimator, whose shards are built against the
    /// live set of the current round).
    ///
    /// # Panics
    /// Panics if an index of `live` is out of range or duplicated.
    pub fn restrict(bank: &LineageBank, live: &[usize]) -> Self {
        let mut entry_pos = vec![usize::MAX; bank.len()];
        let mut witness_refs = vec![0u32; bank.witness_count()];
        for (position, &query) in live.iter().enumerate() {
            assert!(
                entry_pos[query] == usize::MAX,
                "query {query} is live twice"
            );
            entry_pos[query] = position;
            for witness in bank.entry_witnesses(query) {
                witness_refs[witness] += 1;
            }
        }
        let mut live_witnesses = Vec::new();
        let mut witness_pos = vec![usize::MAX; bank.witness_count()];
        for (index, &refs) in witness_refs.iter().enumerate() {
            if refs > 0 {
                witness_pos[index] = live_witnesses.len();
                live_witnesses.push(index);
            }
        }
        BankLiveSet {
            live_entries: live.to_vec(),
            entry_pos,
            witness_refs,
            live_witnesses,
            witness_pos,
        }
    }

    /// Retires query `query`: it leaves the live set, and every arena
    /// witness only it still referenced leaves the containment scan.
    /// Retiring an already-retired query is a no-op.
    ///
    /// # Panics
    /// Panics if `query` is out of range or `bank` has a different shape.
    pub fn retire(&mut self, bank: &LineageBank, query: usize) {
        let position = self.entry_pos[query];
        if position == usize::MAX {
            return;
        }
        self.live_entries.swap_remove(position);
        if let Some(&moved) = self.live_entries.get(position) {
            self.entry_pos[moved] = position;
        }
        self.entry_pos[query] = usize::MAX;
        for witness in bank.entry_witnesses(query) {
            self.witness_refs[witness] -= 1;
            if self.witness_refs[witness] == 0 {
                let at = self.witness_pos[witness];
                self.live_witnesses.swap_remove(at);
                if let Some(&moved) = self.live_witnesses.get(at) {
                    self.witness_pos[moved] = at;
                }
                self.witness_pos[witness] = usize::MAX;
            }
        }
    }

    /// The live query indices (arbitrary order).
    pub fn live_queries(&self) -> &[usize] {
        &self.live_entries
    }

    /// `true` iff query `query` has not been retired.
    pub fn is_live(&self, query: usize) -> bool {
        self.entry_pos[query] != usize::MAX
    }

    /// Number of live queries.
    pub fn live_query_count(&self) -> usize {
        self.live_entries.len()
    }

    /// Number of arena witnesses still referenced by some live query —
    /// the per-draw containment-scan length of
    /// [`LineageBank::evaluate_live_into`].
    pub fn live_witness_count(&self) -> usize {
        self.live_witnesses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::{FactId, Schema};

    fn blocks_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (k, v) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        db
    }

    fn evaluators(db: &Database, texts: &[&str]) -> Vec<QueryEvaluator> {
        texts
            .iter()
            .map(|t| QueryEvaluator::new(parse_query(db.schema(), t).unwrap()))
            .collect()
    }

    fn subsets(universe: usize) -> impl Iterator<Item = FactSet> {
        (0u32..(1 << universe)).map(move |mask| {
            FactSet::from_iter(
                universe,
                (0..universe)
                    .filter(move |i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            )
        })
    }

    #[test]
    fn bank_agrees_with_independent_lineages_on_all_subsets() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let singles: Vec<CompiledLineage> = evals
            .iter()
            .map(|e| CompiledLineage::compile(e, &db, &[]).unwrap().unwrap())
            .collect();
        let mut scratch = BankScratch::new();
        let mut hits = vec![false; bank.len()];
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch, &mut hits);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(hits[i], single.entails(&subset), "query {i}, {subset:?}");
            }
        }
    }

    #[test]
    fn empty_bank_compiles_and_evaluates() {
        let db = blocks_db();
        let bank = LineageBank::compile(&db, &[]).unwrap();
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        assert_eq!(bank.witness_count(), 0);
        assert!(!bank.has_fallback());
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }

    #[test]
    fn duplicate_queries_share_arena_witnesses() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let single = CompiledLineage::compile(&evals[0], &db, &[])
            .unwrap()
            .unwrap();
        // The arena holds each witness once, not once per duplicate.
        assert_eq!(bank.witness_count(), single.witness_count());
        assert_eq!(bank.query_witness_count(0), Some(single.witness_count()));
        assert_eq!(bank.query_witness_count(1), Some(single.witness_count()));
    }

    #[test]
    fn overlapping_queries_share_common_witnesses() {
        let db = blocks_db();
        // Both single-atom queries over block 1 and the R(x,y),R(z,y)
        // self-join absorb into singleton witnesses; the joint arena is
        // smaller than the sum of the parts.
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(x, y), R(z, y)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let sum: usize = (0..2).map(|i| bank.query_witness_count(i).unwrap()).sum();
        assert!(bank.witness_count() < sum, "no sharing happened");
    }

    #[test]
    fn over_cap_query_falls_back_while_others_stay_compiled() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        // Cap 2: the full-scan query has 5 witnesses and overflows; the
        // block lookup has 2 and stays compiled.
        let bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        assert!(bank.is_fallback(0));
        assert!(!bank.is_fallback(1));
        assert!(bank.has_fallback());
        assert_eq!(bank.query_witness_count(0), None);
        assert_eq!(bank.query_witness_count(1), Some(2));
        let mut scratch = BankScratch::new();
        let mut hits = vec![true; 2];
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut hits);
        // Fallback entries are reported as false; the compiled entry is
        // answered on the bitset path.
        assert!(!hits[0]);
        assert!(hits[1]);
    }

    #[test]
    fn live_evaluation_matches_full_evaluation_under_any_retirement_order() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut scratch = BankScratch::new();
        let mut full_hits = vec![false; bank.len()];
        let mut live_hits = vec![false; bank.len()];
        // Retire queries one by one; after every retirement the live
        // evaluation must agree with the full evaluation on the survivors,
        // over every subset of the universe.
        for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
            let mut live = BankLiveSet::full(&bank);
            assert_eq!(live.live_query_count(), 4);
            assert_eq!(live.live_witness_count(), bank.witness_count());
            for (step, &retired) in order.iter().enumerate() {
                for subset in subsets(db.len()) {
                    bank.evaluate_into(&subset, &mut scratch, &mut full_hits);
                    bank.evaluate_live_into(&live, &subset, &mut scratch, &mut live_hits);
                    for &q in live.live_queries() {
                        assert_eq!(live_hits[q], full_hits[q], "step {step}, query {q}");
                    }
                }
                live.retire(&bank, retired);
                assert!(!live.is_live(retired));
                assert_eq!(live.live_query_count(), 4 - step - 1);
            }
            assert_eq!(live.live_witness_count(), 0);
        }
    }

    #[test]
    fn retirement_shrinks_the_witness_scan_and_keeps_shared_witnesses() {
        let db = blocks_db();
        // Queries 0 and 1 are duplicates (all witnesses shared); query 2 is
        // disjoint from them.
        let evals = evaluators(
            &db,
            &["Ans() :- R(1, x)", "Ans() :- R(1, x)", "Ans() :- R(2, x)"],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut live = BankLiveSet::full(&bank);
        let all = bank.witness_count();
        // Retiring one duplicate frees nothing: its twin still references
        // every witness.
        live.retire(&bank, 0);
        assert_eq!(live.live_witness_count(), all);
        // Retiring the twin frees that query's witnesses.
        live.retire(&bank, 1);
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(2).unwrap()
        );
        // Retiring twice is a no-op.
        live.retire(&bank, 1);
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(2).unwrap()
        );
        live.retire(&bank, 2);
        assert_eq!(live.live_witness_count(), 0);
        assert_eq!(live.live_query_count(), 0);
    }

    #[test]
    fn restricted_live_set_equals_full_set_after_retirements() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &["Ans() :- R(1, x)", "Ans() :- R(x, y)", "Ans() :- R(2, x)"],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut incremental = BankLiveSet::full(&bank);
        incremental.retire(&bank, 1);
        let restricted = BankLiveSet::restrict(&bank, &[0, 2]);
        assert_eq!(
            incremental.live_witness_count(),
            restricted.live_witness_count()
        );
        let mut a: Vec<usize> = incremental.live_queries().to_vec();
        let mut b: Vec<usize> = restricted.live_queries().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn live_set_handles_fallback_entries() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        assert!(bank.is_fallback(0));
        let mut live = BankLiveSet::full(&bank);
        // The fallback entry contributes no arena witnesses.
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(1).unwrap()
        );
        let mut scratch = BankScratch::new();
        let mut hits = vec![true; 2];
        bank.evaluate_live_into(&live, &db.all_facts(), &mut scratch, &mut hits);
        assert!(!hits[0], "fallback entries are reported false");
        assert!(hits[1]);
        live.retire(&bank, 0);
        assert_eq!(live.live_queries(), &[1]);
        hits = vec![true; 2];
        bank.evaluate_live_into(&live, &db.all_facts(), &mut scratch, &mut hits);
        assert!(hits[0], "retired entries are left untouched");
        assert!(hits[1]);
    }

    #[test]
    fn arity_mismatch_aborts_compilation() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans(x) :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        assert!(LineageBank::compile(&db, &queries).is_err());
    }

    #[test]
    #[should_panic(expected = "hits length mismatch")]
    fn mismatched_hits_slice_panics() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }
}
