//! A bank of compiled lineages: many queries, one shared witness arena.
//!
//! The batched FPRAS drivers of `ucqa-core` estimate `k` queries over the
//! **same** database by sampling each operational repair once and checking
//! it against every query.  Compiling `k` independent
//! [`CompiledLineage`]s would re-materialise shared witnesses (identical
//! queries, overlapping joins) and re-scan them per query;
//! [`LineageBank`] instead compiles all `(query, candidate)` pairs into
//! one deduplicated arena of witness bitsets.  Each query keeps a bitmask
//! over the arena selecting its own minimal antichain, so the per-sample
//! batched check is:
//!
//! 1. one containment scan over the *distinct* witnesses (word-level
//!    "witness ⊆ repair", each checked exactly once per draw), then
//! 2. one word-level `mask ∧ contained ≠ 0` pass per query.
//!
//! Per-query booleans are **bit-identical** to `CompiledLineage::entails`
//! on the same repair: the mask selects exactly the query's own antichain,
//! so sharing changes the cost, never the outcome.  Queries whose witness
//! enumeration overflows the cap are kept as [fallback](LineageBank::is_fallback)
//! entries — the caller routes those through the backtracking evaluator
//! while the rest of the bank stays on the bitset path.

use std::collections::HashMap;

use ucqa_db::{Database, FactSet, Value};

use crate::lineage::DEFAULT_WITNESS_CAP;
use crate::{CompiledLineage, QueryError, QueryEvaluator};

/// One query of a bank entry: an evaluator plus the candidate tuple.
pub type BankQueryRef<'q> = (&'q QueryEvaluator, &'q [Value]);

/// How one bank entry answers the per-sample check.
#[derive(Debug, Clone)]
enum BankEntry {
    /// Minimal-antichain witnesses, as a bitmask over the shared arena.
    Compiled { mask: Vec<u64> },
    /// Witness enumeration overflowed the cap; the caller must use the
    /// backtracking evaluator for this query.
    Fallback,
}

/// Reusable per-draw scratch of [`LineageBank::evaluate_into`]: one bit per
/// arena witness ("is this witness contained in the current repair?").
#[derive(Debug, Default, Clone)]
pub struct BankScratch {
    contained: Vec<u64>,
}

impl BankScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        BankScratch::default()
    }
}

/// Many compiled lineages over one database, sharing a deduplicated
/// witness arena.
#[derive(Debug, Clone)]
pub struct LineageBank {
    universe: usize,
    /// The arena: every *distinct* witness across all compiled entries,
    /// stored once.
    witnesses: Vec<FactSet>,
    entries: Vec<BankEntry>,
}

impl LineageBank {
    /// Compiles a bank over `db` with the default per-query witness cap
    /// ([`DEFAULT_WITNESS_CAP`], the same cap as single-query
    /// compilation, so a query falls back in the bank iff it falls back
    /// standalone).
    ///
    /// Candidate arities are validated for **every** query before any
    /// sampling can start; the first mismatch aborts compilation.
    pub fn compile(db: &Database, queries: &[BankQueryRef<'_>]) -> Result<Self, QueryError> {
        Self::compile_with_cap(db, queries, DEFAULT_WITNESS_CAP)
    }

    /// As [`LineageBank::compile`], with an explicit per-query witness cap.
    pub fn compile_with_cap(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
    ) -> Result<Self, QueryError> {
        let universe = db.len();
        let mut witnesses: Vec<FactSet> = Vec::new();
        let mut arena_index: HashMap<FactSet, usize> = HashMap::new();
        let mut entries = Vec::with_capacity(queries.len());
        for &(evaluator, candidate) in queries {
            match CompiledLineage::compile_with_cap(evaluator, db, candidate, cap)? {
                None => entries.push(BankEntry::Fallback),
                Some(lineage) => {
                    let mut mask = Vec::new();
                    for witness in lineage.witnesses() {
                        // Probe before cloning: witnesses shared with an
                        // earlier query cost a lookup, not an allocation.
                        let index = match arena_index.get(witness) {
                            Some(&index) => index,
                            None => {
                                let index = witnesses.len();
                                arena_index.insert(witness.clone(), index);
                                witnesses.push(witness.clone());
                                index
                            }
                        };
                        let word = index / 64;
                        if mask.len() <= word {
                            mask.resize(word + 1, 0u64);
                        }
                        mask[word] |= 1u64 << (index % 64);
                    }
                    entries.push(BankEntry::Compiled { mask });
                }
            }
        }
        Ok(LineageBank {
            universe,
            witnesses,
            entries,
        })
    }

    /// The per-draw batched entailment check: writes, for every query `i`,
    /// `hits[i] = (repair ⊨ Qᵢ(c̄ᵢ))` — except for fallback entries, which
    /// are set to `false` and must be answered by the caller's evaluator
    /// (see [`LineageBank::is_fallback`]).
    ///
    /// Performs no heap allocation once `scratch` reaches steady-state
    /// capacity.  Each distinct witness is containment-checked exactly
    /// once, no matter how many queries share it.
    ///
    /// # Panics
    /// Panics if `hits.len()` differs from the number of queries.
    pub fn evaluate_into(&self, repair: &FactSet, scratch: &mut BankScratch, hits: &mut [bool]) {
        assert_eq!(hits.len(), self.entries.len(), "hits length mismatch");
        debug_assert_eq!(repair.universe(), self.universe);
        let words = self.witnesses.len().div_ceil(64);
        scratch.contained.clear();
        scratch.contained.resize(words, 0);
        for (index, witness) in self.witnesses.iter().enumerate() {
            if repair.contains_all(witness) {
                scratch.contained[index / 64] |= 1u64 << (index % 64);
            }
        }
        for (entry, hit) in self.entries.iter().zip(hits.iter_mut()) {
            *hit = match entry {
                BankEntry::Compiled { mask } => {
                    mask.iter().zip(&scratch.contained).any(|(m, c)| m & c != 0)
                }
                BankEntry::Fallback => false,
            };
        }
    }

    /// Number of queries in the bank.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the bank holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of *distinct* witnesses in the shared arena.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }

    /// Number of witnesses of query `index`'s own minimal antichain, or
    /// `None` for a fallback entry.
    pub fn query_witness_count(&self, index: usize) -> Option<usize> {
        match &self.entries[index] {
            BankEntry::Compiled { mask } => {
                Some(mask.iter().map(|w| w.count_ones() as usize).sum())
            }
            BankEntry::Fallback => None,
        }
    }

    /// `true` iff query `index` overflowed the witness cap and must be
    /// answered by the backtracking evaluator.
    pub fn is_fallback(&self, index: usize) -> bool {
        matches!(self.entries[index], BankEntry::Fallback)
    }

    /// `true` iff some entry is a fallback entry.
    pub fn has_fallback(&self) -> bool {
        (0..self.entries.len()).any(|i| self.is_fallback(i))
    }

    /// The size of the fact universe the bank ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::{FactId, Schema};

    fn blocks_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (k, v) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        db
    }

    fn evaluators(db: &Database, texts: &[&str]) -> Vec<QueryEvaluator> {
        texts
            .iter()
            .map(|t| QueryEvaluator::new(parse_query(db.schema(), t).unwrap()))
            .collect()
    }

    fn subsets(universe: usize) -> impl Iterator<Item = FactSet> {
        (0u32..(1 << universe)).map(move |mask| {
            FactSet::from_iter(
                universe,
                (0..universe)
                    .filter(move |i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            )
        })
    }

    #[test]
    fn bank_agrees_with_independent_lineages_on_all_subsets() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let singles: Vec<CompiledLineage> = evals
            .iter()
            .map(|e| CompiledLineage::compile(e, &db, &[]).unwrap().unwrap())
            .collect();
        let mut scratch = BankScratch::new();
        let mut hits = vec![false; bank.len()];
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch, &mut hits);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(hits[i], single.entails(&subset), "query {i}, {subset:?}");
            }
        }
    }

    #[test]
    fn empty_bank_compiles_and_evaluates() {
        let db = blocks_db();
        let bank = LineageBank::compile(&db, &[]).unwrap();
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        assert_eq!(bank.witness_count(), 0);
        assert!(!bank.has_fallback());
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }

    #[test]
    fn duplicate_queries_share_arena_witnesses() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let single = CompiledLineage::compile(&evals[0], &db, &[])
            .unwrap()
            .unwrap();
        // The arena holds each witness once, not once per duplicate.
        assert_eq!(bank.witness_count(), single.witness_count());
        assert_eq!(bank.query_witness_count(0), Some(single.witness_count()));
        assert_eq!(bank.query_witness_count(1), Some(single.witness_count()));
    }

    #[test]
    fn overlapping_queries_share_common_witnesses() {
        let db = blocks_db();
        // Both single-atom queries over block 1 and the R(x,y),R(z,y)
        // self-join absorb into singleton witnesses; the joint arena is
        // smaller than the sum of the parts.
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(x, y), R(z, y)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let sum: usize = (0..2).map(|i| bank.query_witness_count(i).unwrap()).sum();
        assert!(bank.witness_count() < sum, "no sharing happened");
    }

    #[test]
    fn over_cap_query_falls_back_while_others_stay_compiled() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        // Cap 2: the full-scan query has 5 witnesses and overflows; the
        // block lookup has 2 and stays compiled.
        let bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        assert!(bank.is_fallback(0));
        assert!(!bank.is_fallback(1));
        assert!(bank.has_fallback());
        assert_eq!(bank.query_witness_count(0), None);
        assert_eq!(bank.query_witness_count(1), Some(2));
        let mut scratch = BankScratch::new();
        let mut hits = vec![true; 2];
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut hits);
        // Fallback entries are reported as false; the compiled entry is
        // answered on the bitset path.
        assert!(!hits[0]);
        assert!(hits[1]);
    }

    #[test]
    fn arity_mismatch_aborts_compilation() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans(x) :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        assert!(LineageBank::compile(&db, &queries).is_err());
    }

    #[test]
    #[should_panic(expected = "hits length mismatch")]
    fn mismatched_hits_slice_panics() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }
}
