//! A bank of compiled lineages: many queries, one shared witness arena.
//!
//! The batched FPRAS drivers of `ucqa-core` estimate `k` queries over the
//! **same** database by sampling each operational repair once and checking
//! it against every query.  Compiling `k` independent
//! [`CompiledLineage`]s would re-materialise shared witnesses (identical
//! queries, overlapping joins) and re-scan them per query;
//! [`LineageBank`] instead compiles all `(query, candidate)` pairs into
//! one deduplicated arena of witness bitsets.  Each query keeps a bitmask
//! over the arena selecting its own minimal antichain, so the per-sample
//! batched check is:
//!
//! 1. one containment scan over the *distinct* witnesses (word-level
//!    "witness ⊆ repair", each checked exactly once per draw), then
//! 2. one word-level `mask ∧ contained ≠ 0` pass per query.
//!
//! Per-query booleans are **bit-identical** to `CompiledLineage::entails`
//! on the same repair: the mask selects exactly the query's own antichain,
//! so sharing changes the cost, never the outcome.  Queries whose witness
//! enumeration overflows the cap are kept as [fallback](LineageBank::is_fallback)
//! entries — the caller routes those through the backtracking evaluator
//! while the rest of the bank stays on the bitset path.
//!
//! **Compilation is shared too.**  [`LineageBank::compile`] does not run
//! one witness enumeration per entry: it grounds every `(query,
//! candidate)` pair into its plan-ordered atom sequence (candidate
//! constants substituted, variables renumbered — entries equal up to
//! candidate-constant substitution become *identical* sequences), inserts
//! the sequences into a **shared scan trie**, and enumerates the trie
//! once.  Entries sharing an atom prefix share the partial joins of that
//! prefix, so a bank of `k` overlapping joins costs ~one indexed
//! enumeration pass instead of `k`.  The pre-plan behaviour (one naive
//! backtracking pass per entry) survives as
//! [`LineageBank::compile_unplanned`], the baseline of the `e17` bench.
//!
//! The adaptive batched estimators *retire* queries as they converge;
//! [`BankLiveSet`] tracks the live subset of a bank with a reference
//! count per arena witness, so that witnesses referenced only by retired
//! queries drop out of the per-draw containment scan
//! ([`LineageBank::evaluate_live_into`]) and the per-draw cost shrinks as
//! the bank drains.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ucqa_db::{
    ConflictStructure, Database, FactChange, FactId, FactSet, RelationIndex, Sym, Value,
};

use crate::lineage::DEFAULT_WITNESS_CAP;
use crate::plan::{candidate_facts, match_and_bind, unbind, SymAtom, SymTerm};
use crate::{CompiledLineage, QueryError, QueryEvaluator};

/// `a ⊆ b` over sorted, deduplicated fact-id lists (sorted-merge scan).
fn sorted_subset(a: &[FactId], b: &[FactId]) -> bool {
    let mut cursor = 0usize;
    for &fact in a {
        while cursor < b.len() && b[cursor] < fact {
            cursor += 1;
        }
        if cursor == b.len() || b[cursor] != fact {
            return false;
        }
        cursor += 1;
    }
    true
}

/// The id-list counterpart of `lineage::minimal_antichain`: duplicates and
/// supersets absorbed, survivors in ascending cardinality order.  Working
/// on sorted fact-id lists keeps the sort/dedup/containment passes
/// proportional to the witness *sizes* (a handful of ids) instead of the
/// universe size, which is what makes shared bank compilation cheap on
/// large databases.
fn minimal_antichain_images(mut raw: Vec<Vec<FactId>>) -> Vec<Vec<FactId>> {
    raw.sort_unstable();
    raw.dedup();
    raw.sort_by_key(Vec::len);
    let mut witnesses: Vec<Vec<FactId>> = Vec::new();
    for candidate in raw {
        // Among equal cardinalities `⊆` implies `=`, which the dedup
        // already removed — only strictly smaller kept witnesses (a
        // contiguous prefix) can absorb the candidate.
        let smaller = witnesses.partition_point(|kept| kept.len() < candidate.len());
        if !witnesses[..smaller]
            .iter()
            .any(|kept| sorted_subset(kept, &candidate))
        {
            witnesses.push(candidate);
        }
    }
    witnesses
}

/// One query of a bank entry: an evaluator plus the candidate tuple.
pub type BankQueryRef<'q> = (&'q QueryEvaluator, &'q [Value]);

/// A bound on the *compile-time* work of [`LineageBank::compile`]: a cap
/// on enumeration steps (candidate facts visited by the shared scan-trie
/// DFS) and/or a shared cancellation flag.
///
/// Witness enumeration is output-polynomial per entry thanks to the
/// witness cap, but a pathological bank — many deep joins over a large
/// database — can still spend a long time *reaching* the cap.  A compile
/// budget turns that stall into graceful degradation: when the budget
/// interrupts enumeration, **every** entry of the bank is marked as a
/// [fallback](LineageBank::is_fallback) entry (a partially enumerated
/// witness set would under-report entailment, so no partial bank is ever
/// used), and the caller answers all queries through the backtracking
/// evaluator instead.  Correctness is unaffected; only the per-draw cost
/// degrades.
///
/// The flag is a plain [`AtomicBool`] so callers outside this crate (the
/// run budgets of `ucqa-core`) can share their cancellation token without
/// a dependency cycle.
#[derive(Debug, Clone, Default)]
pub struct CompileBudget {
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl CompileBudget {
    /// How many enumeration steps pass between two reads of the
    /// cancellation flag (the step cap is checked on every step).
    const CANCEL_CHECK_INTERVAL: u64 = 256;

    /// No bound: compilation runs to completion.
    pub fn unlimited() -> Self {
        CompileBudget::default()
    }

    /// Caps the number of enumeration steps.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Attaches a cancellation flag; setting it interrupts compilation at
    /// the next flag check.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Polls the budget after `steps` enumeration steps.
    pub fn interrupted(&self, steps: u64) -> bool {
        if self.max_steps.is_some_and(|cap| steps > cap) {
            return true;
        }
        if let Some(flag) = &self.cancel {
            if steps.is_multiple_of(Self::CANCEL_CHECK_INTERVAL) && flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        false
    }
}

/// Observability counters from one shared bank compilation
/// ([`LineageBank::compile_instrumented`]).
///
/// `steps` is the *pass count* of the compile: candidate facts visited by
/// the scan-trie DFS, including the fill passes of memoized subtrees but
/// **not** their replays — so it measures how much enumeration work
/// subtree sharing actually saved (the `e22` bench gates on it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Candidate facts visited by the scan-trie DFS.
    pub steps: u64,
    /// Nodes in the shared scan trie after inserting every entry.
    pub trie_nodes: usize,
    /// Shared-subtree groups detected (≥ 2 structurally identical
    /// subtrees, equal up to slot renaming, anywhere in the trie).
    pub shared_subtrees: usize,
    /// Memoized subtree replays: visits that reused a cached enumeration
    /// instead of re-running the subtree's DFS.
    pub replays: u64,
}

/// How one bank entry answers the per-sample check.
#[derive(Debug, Clone)]
enum BankEntry {
    /// Minimal-antichain witnesses, as a bitmask over the shared arena.
    Compiled { mask: Vec<u64> },
    /// Witness enumeration overflowed the cap; the caller must use the
    /// backtracking evaluator for this query.
    Fallback,
}

/// Reusable per-draw scratch of [`LineageBank::evaluate_into`]: one bit per
/// arena witness ("is this witness contained in the current repair?").
#[derive(Debug, Default, Clone)]
pub struct BankScratch {
    contained: Vec<u64>,
}

impl BankScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        BankScratch::default()
    }
}

/// Many compiled lineages over one database, sharing a deduplicated
/// witness arena.
#[derive(Debug, Clone)]
pub struct LineageBank {
    universe: usize,
    /// The arena: every *distinct* witness across all compiled entries,
    /// stored once.
    witnesses: Vec<FactSet>,
    entries: Vec<BankEntry>,
    /// The database changelog version the bank was compiled (or last
    /// refreshed) against — what [`LineageBank::refresh`] replays from.
    version: u64,
}

impl LineageBank {
    /// Compiles a bank over `db` with the default per-query witness cap
    /// ([`DEFAULT_WITNESS_CAP`], the same cap as single-query
    /// compilation, so a query falls back in the bank iff it falls back
    /// standalone).
    ///
    /// Candidate arities are validated for **every** query before any
    /// sampling can start; the first mismatch aborts compilation.
    pub fn compile(db: &Database, queries: &[BankQueryRef<'_>]) -> Result<Self, QueryError> {
        Self::compile_with_cap(db, queries, DEFAULT_WITNESS_CAP)
    }

    /// As [`LineageBank::compile`], with an explicit per-query witness cap.
    ///
    /// Compilation is **shared**: every entry is grounded into its
    /// plan-ordered atom sequence
    /// (`QueryEvaluator::grounded_answer_atoms`), the sequences are
    /// factored into a scan trie, and witnesses for the whole bank are
    /// enumerated in one indexed pass over the trie.  Per entry, the
    /// witness set (and the fallback decision) is identical to a
    /// standalone [`CompiledLineage::compile_with_cap`] — sharing changes
    /// the compile cost, never the result.
    pub fn compile_with_cap(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
    ) -> Result<Self, QueryError> {
        Self::compile_with_budget(db, queries, cap, &CompileBudget::unlimited())
    }

    /// As [`LineageBank::compile_with_cap`], under a [`CompileBudget`].
    ///
    /// When the budget interrupts enumeration, the whole bank degrades to
    /// [fallback](LineageBank::is_fallback) entries (see [`CompileBudget`]
    /// for why no partial bank is kept) — compilation still succeeds, and
    /// estimation proceeds through the backtracking evaluator.
    pub fn compile_with_budget(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
        budget: &CompileBudget,
    ) -> Result<Self, QueryError> {
        Self::compile_instrumented(db, queries, cap, budget).map(|(bank, _)| bank)
    }

    /// As [`LineageBank::compile_with_budget`], additionally returning the
    /// [`CompileStats`] of the shared enumeration — the pass count the
    /// `e22` bench gates subtree sharing on.
    pub fn compile_instrumented(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
        budget: &CompileBudget,
    ) -> Result<(Self, CompileStats), QueryError> {
        let universe = db.len();
        // Ground every entry first: candidate arities are validated for
        // the whole bank before any enumeration starts.  `None` marks an
        // entry with provably zero homomorphisms (a repeated answer
        // variable received conflicting candidate values, or a constant
        // was never interned by the dictionary) — zero witnesses.
        let dict = db.dictionary();
        let mut trie = ScanTrie::default();
        for (entry, &(evaluator, candidate)) in queries.iter().enumerate() {
            if let Some(atoms) = evaluator.grounded_answer_atoms(dict, candidate)? {
                trie.insert(entry, &atoms);
            }
        }
        let mut raw: Vec<Vec<Vec<FactId>>> = vec![Vec::new(); queries.len()];
        let mut overflowed = vec![false; queries.len()];
        let mut stats = CompileStats {
            trie_nodes: trie.nodes.len(),
            ..CompileStats::default()
        };
        if !trie.enumerate(db, cap, budget, &mut raw, &mut overflowed, &mut stats) {
            // The budget interrupted enumeration: a partially enumerated
            // witness set would under-report entailment, so the whole
            // bank degrades to evaluator fallback.
            overflowed.fill(true);
        }

        // Witnesses are kept as sorted fact-id lists until here —
        // sparse-friendly to sort, hash and containment-check — and only
        // the *distinct* arena survivors are materialised as bitsets.
        let mut witnesses: Vec<FactSet> = Vec::new();
        let mut arena_index: HashMap<Vec<FactId>, usize> = HashMap::new();
        let mut entries = Vec::with_capacity(queries.len());
        for (entry, raw) in raw.into_iter().enumerate() {
            if overflowed[entry] {
                entries.push(BankEntry::Fallback);
                continue;
            }
            let mut mask = Vec::new();
            for witness in minimal_antichain_images(raw) {
                // Probe before moving: witnesses shared with an earlier
                // query cost a lookup, not an arena slot.
                let index = match arena_index.get(&witness) {
                    Some(&index) => index,
                    None => {
                        let index = witnesses.len();
                        witnesses.push(FactSet::from_iter(universe, witness.iter().copied()));
                        arena_index.insert(witness, index);
                        index
                    }
                };
                let word = index / 64;
                if mask.len() <= word {
                    mask.resize(word + 1, 0u64);
                }
                mask[word] |= 1u64 << (index % 64);
            }
            entries.push(BankEntry::Compiled { mask });
        }
        Ok((
            LineageBank {
                universe,
                witnesses,
                entries,
                version: db.version(),
            },
            stats,
        ))
    }

    /// As [`LineageBank::compile`], on the **unplanned baseline**: one
    /// naive backtracking enumeration pass per `(query, candidate)` entry
    /// (via [`CompiledLineage::compile_unplanned`]), no prefix sharing.
    /// The witness arena holds the same witness sets as the shared
    /// compile; only the compile cost differs.  This is the pre-refactor
    /// behaviour, kept as the measured baseline of the `e17` bench and the
    /// cross-check of the property tests.
    pub fn compile_unplanned(
        db: &Database,
        queries: &[BankQueryRef<'_>],
    ) -> Result<Self, QueryError> {
        Self::compile_unplanned_with_cap(db, queries, DEFAULT_WITNESS_CAP)
    }

    /// As [`LineageBank::compile_unplanned`], with an explicit cap.
    pub fn compile_unplanned_with_cap(
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
    ) -> Result<Self, QueryError> {
        let universe = db.len();
        let mut witnesses: Vec<FactSet> = Vec::new();
        let mut arena_index: HashMap<FactSet, usize> = HashMap::new();
        let mut entries = Vec::with_capacity(queries.len());
        for &(evaluator, candidate) in queries {
            match CompiledLineage::compile_unplanned_with_cap(evaluator, db, candidate, cap)? {
                None => entries.push(BankEntry::Fallback),
                Some(lineage) => {
                    let mut mask = Vec::new();
                    for witness in lineage.witnesses() {
                        let index = match arena_index.get(witness) {
                            Some(&index) => index,
                            None => {
                                let index = witnesses.len();
                                arena_index.insert(witness.clone(), index);
                                witnesses.push(witness.clone());
                                index
                            }
                        };
                        let word = index / 64;
                        if mask.len() <= word {
                            mask.resize(word + 1, 0u64);
                        }
                        mask[word] |= 1u64 << (index % 64);
                    }
                    entries.push(BankEntry::Compiled { mask });
                }
            }
        }
        Ok(LineageBank {
            universe,
            witnesses,
            entries,
            version: db.version(),
        })
    }

    /// Incrementally refreshes the bank after database mutations, with the
    /// default witness cap: replays the changelog since the version the
    /// bank was compiled against instead of re-running the shared-trie
    /// enumeration.  `queries` must be the same `(evaluator, candidate)`
    /// list the bank was compiled from.
    ///
    /// Per compiled entry, witnesses touching a deleted fact are dropped
    /// (any absorbed superset contained the same fact, so nothing
    /// resurfaces), new witnesses are enumerated by pinned delta passes
    /// ([`QueryEvaluator::for_each_delta_answer_image`]), and the merged
    /// set re-minimalises to **exactly** the antichain a fresh compile
    /// would build — so per-draw booleans, and hence estimates, are
    /// bit-identical to a recompiled bank's.  The arena is rebuilt in
    /// entry order, preserving the compile-time arena layout.
    ///
    /// Fallback entries stay fallback (the backtracking evaluator they
    /// route through always sees the current database), and a compiled
    /// entry whose refreshed witness count exceeds the cap degrades to
    /// fallback.  Refresh counts only live witnesses against the cap,
    /// where a fresh compile counts every enumerated image, so the two may
    /// make different fallback decisions for borderline entries — the
    /// per-query booleans agree either way.
    ///
    /// Returns the number of changelog entries replayed (`0` when the bank
    /// is already current).
    pub fn refresh(
        &mut self,
        db: &Database,
        queries: &[BankQueryRef<'_>],
    ) -> Result<usize, QueryError> {
        self.refresh_with_cap(db, queries, DEFAULT_WITNESS_CAP)
    }

    /// As [`LineageBank::refresh`], additionally reporting which entries'
    /// [fingerprint](LineageBank::entry_fingerprint) actually changed
    /// across the replay.
    ///
    /// `before` is the fingerprint vector of the **pre-replay** state —
    /// the caller caches it from compile time or from the previous
    /// refresh, because the conflict structure it was computed under no
    /// longer exists once the database has moved.  `structure` describes
    /// the **post-replay** conflict state (the caller refreshes its
    /// conflict index first, then the bank).  An entry is flagged changed
    /// iff the fingerprints differ (fallback entries, which have no
    /// witness set to fingerprint, are always flagged once anything at
    /// all replayed), and the post-replay fingerprints are returned for
    /// the caller to cache for the next delta.
    ///
    /// This is the freshness signal of the sliding-window estimator
    /// (`ucqa_core::stream`): entries whose fingerprint survived a tick
    /// keep their converged estimates verbatim, entries that changed
    /// re-enter the shared stopping loop via [`BankLiveSet::enroll`].
    /// Under uniform-sequences generators the caller must additionally
    /// compare [`ConflictStructure::fingerprint`]s — see
    /// [`LineageBank::entry_fingerprint`].
    ///
    /// # Panics
    /// Panics if `before.len()` differs from the number of bank entries.
    pub fn refresh_with_delta(
        &mut self,
        db: &Database,
        queries: &[BankQueryRef<'_>],
        before: &[Option<u64>],
        structure: &ConflictStructure,
    ) -> Result<RefreshDelta, QueryError> {
        assert_eq!(
            before.len(),
            self.entries.len(),
            "refresh_with_delta requires one cached fingerprint per entry"
        );
        let replayed = self.refresh(db, queries)?;
        if replayed == 0 {
            // Nothing replayed: the database did not move, so even
            // fallback entries (fingerprint `None`) are provably fresh
            // and the cached fingerprints still describe this state.
            return Ok(RefreshDelta {
                replayed,
                changed: vec![false; self.entries.len()],
                fingerprints: before.to_vec(),
            });
        }
        let fingerprints = self.fingerprints(structure);
        let changed = fingerprints
            .iter()
            .zip(before)
            .map(|(after, prior)| after.is_none() || prior.is_none() || after != prior)
            .collect();
        Ok(RefreshDelta {
            replayed,
            changed,
            fingerprints,
        })
    }

    /// As [`LineageBank::refresh`], with an explicit per-query witness cap.
    ///
    /// # Panics
    /// Panics if `queries.len()` differs from the number of bank entries.
    pub fn refresh_with_cap(
        &mut self,
        db: &Database,
        queries: &[BankQueryRef<'_>],
        cap: usize,
    ) -> Result<usize, QueryError> {
        assert_eq!(
            queries.len(),
            self.entries.len(),
            "refresh requires the bank's own query list"
        );
        let changes = db.changes_since(self.version);
        if changes.is_empty() {
            return Ok(0);
        }
        let applied = changes.len();
        let universe = db.len();
        let mut deleted = FactSet::empty(universe);
        let mut inserted_by_relation: Vec<Vec<FactId>> =
            vec![Vec::new(); db.schema().relation_count()];
        for change in changes {
            match change {
                FactChange::Inserted(id) => {
                    if db.is_live(*id) {
                        inserted_by_relation[db.relation_of(*id).index()].push(*id);
                    }
                }
                FactChange::Deleted { id, .. } => {
                    deleted.insert(*id);
                }
            }
        }
        let all = db.all_facts();
        let mut witnesses: Vec<FactSet> = Vec::new();
        let mut arena_index: HashMap<Vec<FactId>, usize> = HashMap::new();
        let mut entries = Vec::with_capacity(self.entries.len());
        for (entry, &(evaluator, candidate)) in queries.iter().enumerate() {
            if self.is_fallback(entry) {
                entries.push(BankEntry::Fallback);
                continue;
            }
            // Survivors first, as sorted id lists (`FactSet::iter` is
            // ascending); `intersects` scans the common word prefix, so
            // old smaller-universe witnesses compare fine.
            let mut raw: Vec<Vec<FactId>> = Vec::new();
            for index in self.entry_witnesses(entry) {
                let witness = &self.witnesses[index];
                if !witness.intersects(&deleted) {
                    raw.push(witness.iter().collect());
                }
            }
            let mut over_cap = false;
            evaluator.for_each_delta_answer_image(
                db,
                &all,
                candidate,
                &inserted_by_relation,
                |image| {
                    let mut ids = image.to_vec();
                    ids.sort_unstable();
                    ids.dedup();
                    raw.push(ids);
                    over_cap = raw.len() > cap;
                    over_cap
                },
            )?;
            if over_cap {
                entries.push(BankEntry::Fallback);
                continue;
            }
            let mut mask = Vec::new();
            for witness in minimal_antichain_images(raw) {
                let index = match arena_index.get(&witness) {
                    Some(&index) => index,
                    None => {
                        let index = witnesses.len();
                        witnesses.push(FactSet::from_iter(universe, witness.iter().copied()));
                        arena_index.insert(witness, index);
                        index
                    }
                };
                let word = index / 64;
                if mask.len() <= word {
                    mask.resize(word + 1, 0u64);
                }
                mask[word] |= 1u64 << (index % 64);
            }
            entries.push(BankEntry::Compiled { mask });
        }
        self.universe = universe;
        self.witnesses = witnesses;
        self.entries = entries;
        self.version = db.version();
        Ok(applied)
    }

    /// The per-draw batched entailment check: writes, for every query `i`,
    /// `hits[i] = (repair ⊨ Qᵢ(c̄ᵢ))` — except for fallback entries, which
    /// are set to `false` and must be answered by the caller's evaluator
    /// (see [`LineageBank::is_fallback`]).
    ///
    /// Performs no heap allocation once `scratch` reaches steady-state
    /// capacity.  Each distinct witness is containment-checked exactly
    /// once, no matter how many queries share it.
    ///
    /// # Panics
    /// Panics if `hits.len()` differs from the number of queries.
    pub fn evaluate_into(&self, repair: &FactSet, scratch: &mut BankScratch, hits: &mut [bool]) {
        assert_eq!(hits.len(), self.entries.len(), "hits length mismatch");
        debug_assert_eq!(repair.universe(), self.universe);
        let words = self.witnesses.len().div_ceil(64);
        scratch.contained.clear();
        scratch.contained.resize(words, 0);
        for (index, witness) in self.witnesses.iter().enumerate() {
            if repair.contains_all(witness) {
                scratch.contained[index / 64] |= 1u64 << (index % 64);
            }
        }
        for (entry, hit) in self.entries.iter().zip(hits.iter_mut()) {
            *hit = match entry {
                BankEntry::Compiled { mask } => {
                    mask.iter().zip(&scratch.contained).any(|(m, c)| m & c != 0)
                }
                BankEntry::Fallback => false,
            };
        }
    }

    /// Number of queries in the bank.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the bank holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of *distinct* witnesses in the shared arena.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }

    /// Number of witnesses of query `index`'s own minimal antichain, or
    /// `None` for a fallback entry.
    pub fn query_witness_count(&self, index: usize) -> Option<usize> {
        match &self.entries[index] {
            BankEntry::Compiled { mask } => {
                Some(mask.iter().map(|w| w.count_ones() as usize).sum())
            }
            BankEntry::Fallback => None,
        }
    }

    /// `true` iff query `index` overflowed the witness cap and must be
    /// answered by the backtracking evaluator.
    pub fn is_fallback(&self, index: usize) -> bool {
        matches!(self.entries[index], BankEntry::Fallback)
    }

    /// `true` iff some entry is a fallback entry.
    pub fn has_fallback(&self) -> bool {
        (0..self.entries.len()).any(|i| self.is_fallback(i))
    }

    /// The size of the fact universe the bank ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The database changelog version the bank is current with (see
    /// [`Database::version`]); [`LineageBank::refresh`] replays the
    /// changelog from here.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The arena witness indices referenced by entry `index`'s mask
    /// (empty for fallback entries).
    fn entry_witnesses(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        let mask: &[u64] = match &self.entries[index] {
            BankEntry::Compiled { mask } => mask,
            BankEntry::Fallback => &[],
        };
        mask.iter().enumerate().flat_map(|(word, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word * 64 + bit)
            })
        })
    }

    /// A stable fingerprint of entry `index`'s lineage **and its conflict
    /// context** — a 64-bit FNV-1a hash over the sorted witness id-lists
    /// (witnesses ordered lexicographically, fact ids ascending within
    /// each witness), each fact id paired with the
    /// [`ConflictStructure::digest`] of its conflict component — or
    /// `None` for a fallback entry, which has no witness set to hash.
    /// `structure` must describe the same database state the bank is
    /// current with.
    ///
    /// Two states assign an entry equal fingerprints iff its witness
    /// *sets* are equal **and** every witness fact sits in a conflict
    /// component holding the same fact ids: the arena layout, which
    /// shifts as other entries change across refreshes, does not
    /// participate.  The witness sets alone are not enough — a fact that
    /// joins a witness fact's block without matching any query atom
    /// leaves the lineage intact but changes the repair distribution the
    /// witness is drawn under, and with it the answer probability.
    ///
    /// The windowed estimator uses this to detect entries whose lineage
    /// *and* whose repair marginals provably survived a tick, and keeps
    /// their converged estimates.  Under uniform repairs and uniform
    /// operations the per-component marginals are independent of the
    /// rest of the database, so the fingerprint alone certifies an
    /// unchanged probability; under uniform *sequences* the marginals
    /// additionally depend on the global component structure (sequence
    /// interleavings weight components against each other), which the
    /// caller must gate separately via
    /// [`ConflictStructure::fingerprint`].
    pub fn entry_fingerprint(&self, index: usize, structure: &ConflictStructure) -> Option<u64> {
        match &self.entries[index] {
            BankEntry::Fallback => None,
            BankEntry::Compiled { .. } => {
                let mut lists: Vec<Vec<FactId>> = self
                    .entry_witnesses(index)
                    .map(|w| self.witnesses[w].iter().collect())
                    .collect();
                lists.sort_unstable();
                const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
                const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
                let mut hash = FNV_OFFSET;
                let mut mix = |value: u64| {
                    for byte in value.to_le_bytes() {
                        hash ^= u64::from(byte);
                        hash = hash.wrapping_mul(FNV_PRIME);
                    }
                };
                mix(lists.len() as u64);
                for list in &lists {
                    // Length-prefix each list so concatenations can't
                    // collide across witness boundaries.
                    mix(list.len() as u64);
                    for &id in list {
                        mix(id.index() as u64);
                        mix(structure.digest(id));
                    }
                }
                Some(hash)
            }
        }
    }

    /// The per-entry fingerprints under `structure`, in entry order (see
    /// [`LineageBank::entry_fingerprint`]).
    pub fn fingerprints(&self, structure: &ConflictStructure) -> Vec<Option<u64>> {
        (0..self.entries.len())
            .map(|i| self.entry_fingerprint(i, structure))
            .collect()
    }

    /// The witness sets of entry `index`'s minimal antichain, in arena
    /// order, or `None` for a fallback entry.  Ground-truth comparisons
    /// (windowed state vs a from-scratch rebuild) canonicalize these into
    /// sorted id-lists before comparing.
    pub fn witnesses_of(&self, index: usize) -> Option<Vec<&FactSet>> {
        match &self.entries[index] {
            BankEntry::Fallback => None,
            BankEntry::Compiled { .. } => Some(
                self.entry_witnesses(index)
                    .map(|w| &self.witnesses[w])
                    .collect(),
            ),
        }
    }

    /// As [`LineageBank::evaluate_into`], restricted to the live queries
    /// of `live`: writes `hits[q]` for every live query `q` (fallback
    /// entries are set to `false` as usual) and **skips** both retired
    /// queries and the arena witnesses no live query references.
    ///
    /// On the live entries the booleans are bit-identical to
    /// [`LineageBank::evaluate_into`]: a live query's witnesses all carry a
    /// positive reference count, so compaction changes the cost of the
    /// containment scan, never its outcome.  Entries of retired queries
    /// are left untouched (they may hold stale values).
    ///
    /// # Panics
    /// Panics if `hits.len()` differs from the number of queries, or if
    /// `live` was built for a different bank shape.
    pub fn evaluate_live_into(
        &self,
        live: &BankLiveSet,
        repair: &FactSet,
        scratch: &mut BankScratch,
        hits: &mut [bool],
    ) {
        assert_eq!(hits.len(), self.entries.len(), "hits length mismatch");
        assert_eq!(
            live.witness_refs.len(),
            self.witnesses.len(),
            "live set was built for a different bank"
        );
        debug_assert_eq!(repair.universe(), self.universe);
        let words = self.witnesses.len().div_ceil(64);
        scratch.contained.clear();
        scratch.contained.resize(words, 0);
        for &index in &live.live_witnesses {
            if repair.contains_all(&self.witnesses[index]) {
                scratch.contained[index / 64] |= 1u64 << (index % 64);
            }
        }
        for &query in &live.live_entries {
            hits[query] = match &self.entries[query] {
                BankEntry::Compiled { mask } => {
                    mask.iter().zip(&scratch.contained).any(|(m, c)| m & c != 0)
                }
                BankEntry::Fallback => false,
            };
        }
    }
}

/// What one [`LineageBank::refresh_with_delta`] actually touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshDelta {
    /// Changelog entries replayed (`0` when the bank was already current).
    pub replayed: usize,
    /// Per entry, in bank order: `true` iff the lineage-and-conflict
    /// fingerprint changed across the replay.  Fallback entries are
    /// flagged whenever anything replayed — with no witness set there is
    /// nothing to prove unchanged.
    pub changed: Vec<bool>,
    /// The post-replay fingerprints, in bank order — the `before` of the
    /// next delta.
    pub fingerprints: Vec<Option<u64>>,
}

impl RefreshDelta {
    /// The indices of the entries whose lineage changed.
    pub fn changed_entries(&self) -> impl Iterator<Item = usize> + '_ {
        self.changed
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i))
    }
}

/// One node of the shared scan trie: a grounded, slot-normalized,
/// dictionary-encoded atom, plus everything the enumerator needs to run
/// it as one indexed join step.
#[derive(Debug)]
struct TrieNode {
    /// The grounded atom (constants substituted and encoded to symbols,
    /// variables renumbered by first occurrence along the path — so
    /// prefixes equal up to naming share nodes, and node comparison
    /// during insertion is a `u32`-wise compare).
    atom: SymAtom,
    /// Term positions bound when this node runs (constants, plus
    /// variables introduced by ancestor nodes).
    bound_positions: Vec<usize>,
    /// Number of distinct variable slots introduced up to and including
    /// this node (= the child level's "bound slots" count).
    slots_after: usize,
    /// Child node ids.
    children: Vec<usize>,
    /// Entries whose grounded atom sequence ends at this node: every full
    /// match of the path emits one witness per listed entry.
    terminals: Vec<usize>,
    /// All entries with a terminal in this subtree — once they have all
    /// overflowed their cap, the subtree is pruned.
    entries_below: Vec<usize>,
}

/// The shared scan trie of one bank compilation: grounded atom sequences
/// factored by common prefix, enumerated in a single DFS.
#[derive(Debug, Default)]
struct ScanTrie {
    nodes: Vec<TrieNode>,
    /// Children of the (virtual) root.
    roots: Vec<usize>,
    /// Entries with an *empty* grounded atom sequence (empty-body
    /// queries): their single witness is the empty set.
    root_terminals: Vec<usize>,
    /// Maximum `slots_after` over all nodes — the binding-buffer size.
    max_slots: usize,
}

impl ScanTrie {
    /// Inserts one entry's grounded atom sequence, sharing every node of
    /// the longest existing prefix.
    fn insert(&mut self, entry: usize, atoms: &[SymAtom]) {
        if atoms.is_empty() {
            self.root_terminals.push(entry);
            return;
        }
        let mut parent: Option<usize> = None;
        let mut slots_before = 0usize;
        for (depth, atom) in atoms.iter().enumerate() {
            let children: &[usize] = match parent {
                None => &self.roots,
                Some(p) => &self.nodes[p].children,
            };
            let found = children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].atom == *atom);
            let node = match found {
                Some(node) => node,
                None => {
                    let bound_positions: Vec<usize> = atom
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, term)| match term {
                            SymTerm::Const(_) => true,
                            SymTerm::Var(slot) => *slot < slots_before,
                        })
                        .map(|(position, _)| position)
                        .collect();
                    let slots_after = atom
                        .terms
                        .iter()
                        .filter_map(|term| match term {
                            SymTerm::Var(slot) => Some(slot + 1),
                            SymTerm::Const(_) => None,
                        })
                        .fold(slots_before, usize::max);
                    let node = self.nodes.len();
                    self.nodes.push(TrieNode {
                        atom: atom.clone(),
                        bound_positions,
                        slots_after,
                        children: Vec::new(),
                        terminals: Vec::new(),
                        entries_below: Vec::new(),
                    });
                    self.max_slots = self.max_slots.max(slots_after);
                    match parent {
                        None => self.roots.push(node),
                        Some(p) => self.nodes[p].children.push(node),
                    }
                    node
                }
            };
            self.nodes[node].entries_below.push(entry);
            slots_before = self.nodes[node].slots_after;
            if depth + 1 == atoms.len() {
                self.nodes[node].terminals.push(entry);
            }
            parent = Some(node);
        }
    }

    /// `slots_before` of every node (the parent's `slots_after`, `0` at
    /// the roots) — the base against which a subtree's slots are local.
    fn compute_bases(&self) -> Vec<usize> {
        let mut bases = vec![0usize; self.nodes.len()];
        let mut stack: Vec<(usize, usize)> = self.roots.iter().map(|&root| (root, 0)).collect();
        while let Some((node, base)) = stack.pop() {
            bases[node] = base;
            for &child in &self.nodes[node].children {
                stack.push((child, self.nodes[node].slots_after));
            }
        }
        bases
    }

    /// Serialises the subtree rooted at `node` into a canonical string:
    /// local slots (introduced inside the subtree, `≥ base`) rebased to
    /// `l{slot − base}`, external slots (bound by ancestors) numbered
    /// `e{k}` by first occurrence in the canonical traversal, children
    /// visited in sorted order of their own serialisation.  Two subtrees
    /// serialise equally iff they are identical up to slot renaming —
    /// enumeration of one under a binding of its external slots is then
    /// valid verbatim for the other.  Appends the pre-order node ids to
    /// `order` and the external slots to `externals` alongside.
    fn canon_subtree(
        &self,
        node: usize,
        base: usize,
        out: &mut String,
        externals: &mut Vec<usize>,
        order: &mut Vec<usize>,
    ) {
        use std::fmt::Write as _;
        order.push(node);
        let n = &self.nodes[node];
        let _ = write!(out, "{}(", n.atom.relation.index());
        for term in &n.atom.terms {
            match term {
                SymTerm::Const(sym) => {
                    let _ = write!(out, "c{},", sym.index());
                }
                SymTerm::Var(slot) if *slot >= base => {
                    let _ = write!(out, "l{},", slot - base);
                }
                SymTerm::Var(slot) => {
                    let k = match externals.iter().position(|s| s == slot) {
                        Some(k) => k,
                        None => {
                            externals.push(*slot);
                            externals.len() - 1
                        }
                    };
                    let _ = write!(out, "e{k},");
                }
            }
        }
        out.push(')');
        // Children ordered by their own standalone serialisation, so the
        // canonical traversal is insertion-order independent.
        let mut kids: Vec<(String, usize)> = n
            .children
            .iter()
            .map(|&child| {
                let mut key = String::new();
                self.canon_subtree(child, base, &mut key, &mut Vec::new(), &mut Vec::new());
                (key, child)
            })
            .collect();
        kids.sort();
        out.push('[');
        for (_, child) in kids {
            self.canon_subtree(child, base, out, externals, order);
        }
        out.push(']');
    }

    /// Detects every group of ≥ 2 structurally identical subtrees (equal
    /// canonical serialisations, terminals ignored) anywhere in the trie.
    /// Cost-based plans order each query's atoms independently, so shared
    /// work no longer always surfaces as a shared *prefix*; these groups
    /// are where [`ScanTrie::enumerate`] recovers the sharing, by
    /// memoizing one member's enumeration per external-slot binding and
    /// replaying it for the others.
    fn shared_subtrees(&self) -> SubtreeSharing {
        let mut sharing = SubtreeSharing::default();
        if self.nodes.is_empty() {
            return sharing;
        }
        let bases = self.compute_bases();
        let mut by_key: HashMap<String, Vec<SubtreeMember>> = HashMap::new();
        for (node, &base) in bases.iter().enumerate() {
            let mut key = String::new();
            let mut externals = Vec::new();
            let mut order = Vec::new();
            self.canon_subtree(node, base, &mut key, &mut externals, &mut order);
            by_key
                .entry(key)
                .or_default()
                .push(SubtreeMember { order, externals });
        }
        for (_, members) in by_key {
            if members.len() < 2 {
                continue;
            }
            let positions = members[0].order.len();
            let mut emit = vec![false; positions];
            for member in &members {
                for (pos, &node) in member.order.iter().enumerate() {
                    if !self.nodes[node].terminals.is_empty() {
                        emit[pos] = true;
                    }
                }
            }
            let group = sharing.groups.len();
            for (index, member) in members.iter().enumerate() {
                sharing.member_of.insert(member.order[0], (group, index));
            }
            sharing.groups.push(SubtreeGroup { members, emit });
        }
        sharing
    }

    /// Enumerates the whole trie in one DFS, appending each full match's
    /// image to `raw[entry]` for every terminal entry of the matched path.
    /// An entry whose raw witness count exceeds `cap` is flagged in
    /// `overflowed` and collects no further witnesses; subtrees whose
    /// entries have all overflowed are pruned.
    ///
    /// Structurally identical subtrees (as detected by
    /// [`ScanTrie::shared_subtrees`]) are enumerated **once per binding of
    /// their external slots**: the first visit records the subtree's
    /// emissions, later visits replay them against their own terminals.
    /// Replay preserves the per-entry witness multiset and the per-push
    /// overflow accounting, so witness sets and fallback flags are
    /// bit-identical to the unshared DFS — only the pass count shrinks.
    ///
    /// Returns `false` iff `budget` interrupted the DFS (the collected
    /// witnesses are then incomplete and must not be used).
    fn enumerate(
        &self,
        db: &Database,
        cap: usize,
        budget: &CompileBudget,
        raw: &mut [Vec<Vec<FactId>>],
        overflowed: &mut [bool],
        stats: &mut CompileStats,
    ) -> bool {
        for &entry in &self.root_terminals {
            // An empty body is matched by the empty image: one witness,
            // the empty set (entailed by every subset).
            raw[entry].push(Vec::new());
        }
        let sharing = self.shared_subtrees();
        stats.shared_subtrees = sharing.groups.len();
        let cx = EnumCx {
            db,
            index: db.relation_index(),
            cap,
            budget,
            sharing: &sharing,
        };
        let mut state = EnumState {
            steps: 0,
            replays: 0,
            bindings: vec![None; self.max_slots],
            image: Vec::new(),
            cache: HashMap::new(),
            cached_emissions: 0,
        };
        let mut complete = true;
        for &root in &self.roots {
            if !self.visit(&cx, &mut state, root, raw, overflowed) {
                complete = false;
                break;
            }
        }
        stats.steps = state.steps;
        stats.replays = state.replays;
        complete
    }

    /// One DFS node of [`ScanTrie::enumerate`]; returns `false` iff the
    /// compile budget interrupted the walk.
    fn visit(
        &self,
        cx: &EnumCx<'_>,
        state: &mut EnumState,
        node_id: usize,
        raw: &mut [Vec<Vec<FactId>>],
        overflowed: &mut [bool],
    ) -> bool {
        let node = &self.nodes[node_id];
        if node.entries_below.iter().all(|&e| overflowed[e]) {
            return true;
        }
        // A shared subtree: enumerate once per external binding, replay
        // everywhere else (unless the memo budget is spent — then this
        // occurrence simply runs the plain DFS below).
        if let Some(&(group, member)) = cx.sharing.member_of.get(&node_id) {
            let group_ref = &cx.sharing.groups[group];
            let member_ref = &group_ref.members[member];
            let external_syms: Vec<Sym> = member_ref
                .externals
                .iter()
                .map(|&slot| {
                    // Invariant, not user-reachable: external slots are
                    // bound by ancestor nodes before this depth.
                    state.bindings[slot].expect("ancestor slots are bound during the DFS")
                })
                .collect();
            let key = (group, external_syms);
            if !state.cache.contains_key(&key) && state.cached_emissions < MEMO_EMISSION_BUDGET {
                let mut recorded: Vec<(u32, Vec<FactId>)> = Vec::new();
                let mut counts = vec![0usize; group_ref.emit.len()];
                let mut open = group_ref.emit.iter().filter(|&&e| e).count();
                let mut local_image: Vec<FactId> = Vec::new();
                if !self.record(
                    cx,
                    state,
                    member_ref,
                    group_ref,
                    0,
                    &mut local_image,
                    &mut recorded,
                    &mut counts,
                    &mut open,
                ) {
                    return false;
                }
                state.cached_emissions += recorded.len();
                state.cache.insert(key.clone(), Rc::new(recorded));
            }
            if let Some(emissions) = state.cache.get(&key).cloned() {
                state.replays += 1;
                for (pos, local) in emissions.iter() {
                    let emit_node = &self.nodes[member_ref.order[*pos as usize]];
                    if emit_node.terminals.is_empty() {
                        continue;
                    }
                    let mut ids: Vec<FactId> = state
                        .image
                        .iter()
                        .copied()
                        .chain(local.iter().copied())
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    for &entry in &emit_node.terminals {
                        if !overflowed[entry] {
                            raw[entry].push(ids.clone());
                            if raw[entry].len() > cx.cap {
                                overflowed[entry] = true;
                                raw[entry] = Vec::new();
                            }
                        }
                    }
                }
                return true;
            }
        }
        let columns = cx.db.columns_of(node.atom.relation);
        let mut gallop_scratch = Vec::new();
        let candidates = candidate_facts(
            cx.db,
            cx.index,
            node.atom.relation,
            &node.atom.terms,
            &node.bound_positions,
            &state.bindings,
            &mut gallop_scratch,
        );
        for &fact_id in candidates {
            state.steps += 1;
            if cx.budget.interrupted(state.steps) {
                return false;
            }
            let Some(bound_here) = match_and_bind(
                &node.atom.terms,
                columns,
                cx.db.row_of(fact_id),
                &mut state.bindings,
            ) else {
                continue;
            };
            state.image.push(fact_id);
            if !node.terminals.is_empty() {
                // Normalise the image once per match, not once per
                // terminal (duplicate entries share one terminal list).
                let mut ids = state.image.clone();
                ids.sort_unstable();
                ids.dedup();
                for &entry in &node.terminals {
                    if !overflowed[entry] {
                        raw[entry].push(ids.clone());
                        // One past the cap is enough to know this entry
                        // must fall back to the evaluator.
                        if raw[entry].len() > cx.cap {
                            overflowed[entry] = true;
                            raw[entry] = Vec::new();
                        }
                    }
                }
            }
            for &child in &node.children {
                if !self.visit(cx, state, child, raw, overflowed) {
                    // Interrupted: the caller discards every witness, so
                    // there is no need to unwind bindings on the way out.
                    return false;
                }
            }
            state.image.pop();
            unbind(&node.atom.terms, bound_here, &mut state.bindings);
        }
        true
    }

    /// The fill pass of one memoized subtree: a plain DFS over the member
    /// rooted at `member.order[pos]` that *records* each match landing on
    /// an emit position (a canonical position where some group member has
    /// terminals) instead of pushing witnesses.  Per emit position, at
    /// most `cap + 1` emissions are recorded — any entry replaying more
    /// than that from one position has provably overflowed already, so
    /// truncation cannot change a witness set or a fallback flag.  No
    /// overflow pruning happens here (the cache must be complete for
    /// *every* member), but the step budget still applies; returns `false`
    /// iff interrupted.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        cx: &EnumCx<'_>,
        state: &mut EnumState,
        member: &SubtreeMember,
        group: &SubtreeGroup,
        pos: usize,
        local_image: &mut Vec<FactId>,
        recorded: &mut Vec<(u32, Vec<FactId>)>,
        counts: &mut [usize],
        open: &mut usize,
    ) -> bool {
        if *open == 0 {
            // Every emit position already holds cap + 1 emissions:
            // nothing below can still matter.
            return true;
        }
        let node_id = member.order[pos];
        let node = &self.nodes[node_id];
        let columns = cx.db.columns_of(node.atom.relation);
        let mut gallop_scratch = Vec::new();
        let candidates = candidate_facts(
            cx.db,
            cx.index,
            node.atom.relation,
            &node.atom.terms,
            &node.bound_positions,
            &state.bindings,
            &mut gallop_scratch,
        );
        for &fact_id in candidates {
            state.steps += 1;
            if cx.budget.interrupted(state.steps) {
                return false;
            }
            let Some(bound_here) = match_and_bind(
                &node.atom.terms,
                columns,
                cx.db.row_of(fact_id),
                &mut state.bindings,
            ) else {
                continue;
            };
            local_image.push(fact_id);
            if group.emit[pos] && counts[pos] <= cx.cap {
                recorded.push((pos as u32, local_image.clone()));
                counts[pos] += 1;
                if counts[pos] > cx.cap {
                    *open -= 1;
                }
            }
            for &child in &node.children {
                // The canonical order is a pre-order traversal, so a
                // child's position is its index in `member.order`.
                let child_pos = member
                    .order
                    .iter()
                    .position(|&n| n == child)
                    .expect("subtree traversal covers every child");
                if !self.record(
                    cx,
                    state,
                    member,
                    group,
                    child_pos,
                    local_image,
                    recorded,
                    counts,
                    open,
                ) {
                    return false;
                }
            }
            local_image.pop();
            unbind(&node.atom.terms, bound_here, &mut state.bindings);
        }
        true
    }
}

/// A hard bound on the total emissions retained by the subtree memo of one
/// [`ScanTrie::enumerate`] — past it, further shared-subtree occurrences
/// fall back to the plain DFS (correctness is unaffected; only the
/// sharing degrades).
const MEMO_EMISSION_BUDGET: usize = 1 << 20;

/// One occurrence of a shared subtree in the trie.
#[derive(Debug)]
struct SubtreeMember {
    /// Node ids in canonical (pre-order, sorted-children) traversal
    /// order; `order[0]` is the subtree root.
    order: Vec<usize>,
    /// The ancestor-bound slots the subtree reads, in canonical
    /// first-occurrence order — the memo key is their bound symbols.
    externals: Vec<usize>,
}

/// A group of ≥ 2 structurally identical subtrees.
#[derive(Debug)]
struct SubtreeGroup {
    members: Vec<SubtreeMember>,
    /// Canonical position → some member has terminals there (the
    /// positions whose matches the fill pass must record).
    emit: Vec<bool>,
}

/// The sharing analysis of one trie, from [`ScanTrie::shared_subtrees`].
#[derive(Debug, Default)]
struct SubtreeSharing {
    /// Subtree-root node id → (group index, member index).
    member_of: HashMap<usize, (usize, usize)>,
    groups: Vec<SubtreeGroup>,
}

/// The borrowed context of one [`ScanTrie::enumerate`] DFS.
struct EnumCx<'a> {
    db: &'a Database,
    index: &'a RelationIndex,
    cap: usize,
    budget: &'a CompileBudget,
    sharing: &'a SubtreeSharing,
}

/// One recorded subtree emission: the local emit position and the local
/// fact image to splice onto the caller's prefix on replay.
type SubtreeEmission = (u32, Vec<FactId>);

/// The mutable state of one [`ScanTrie::enumerate`] DFS.
struct EnumState {
    steps: u64,
    replays: u64,
    bindings: Vec<Option<Sym>>,
    image: Vec<FactId>,
    /// `(group, external symbols)` → recorded emissions of the subtree.
    cache: HashMap<(usize, Vec<Sym>), Rc<Vec<SubtreeEmission>>>,
    cached_emissions: usize,
}

/// The live subset of a [`LineageBank`] under retirement: which queries
/// are still being estimated, and — via a reference count per arena
/// witness — which *distinct* witnesses some live query still references.
///
/// The adaptive batched estimators retire a query the moment it converges;
/// [`BankLiveSet::retire`] decrements the reference counts of the retired
/// query's witnesses and drops the ones reaching zero from the live scan
/// list, so the per-draw containment scan of
/// [`LineageBank::evaluate_live_into`] only ever pays for witnesses that
/// can still decide a live query.  Witnesses shared with a live query stay
/// in the scan until their last referent retires.
#[derive(Debug, Clone)]
pub struct BankLiveSet {
    /// Live query indices, in arbitrary order (dense, swap-removed).
    live_entries: Vec<usize>,
    /// Position of each query in `live_entries`, `usize::MAX` once retired.
    entry_pos: Vec<usize>,
    /// How many live queries reference each arena witness.
    witness_refs: Vec<u32>,
    /// Arena indices with a positive reference count (dense, swap-removed).
    live_witnesses: Vec<usize>,
    /// Position of each witness in `live_witnesses`, `usize::MAX` when dead.
    witness_pos: Vec<usize>,
}

impl BankLiveSet {
    /// A live set with **every** query of `bank` live.
    pub fn full(bank: &LineageBank) -> Self {
        let all: Vec<usize> = (0..bank.len()).collect();
        Self::restrict(bank, &all)
    }

    /// A live set with exactly the queries of `live` live (used by the
    /// round-based parallel estimator, whose shards are built against the
    /// live set of the current round).
    ///
    /// # Panics
    /// Panics if an index of `live` is out of range or duplicated.
    pub fn restrict(bank: &LineageBank, live: &[usize]) -> Self {
        let mut entry_pos = vec![usize::MAX; bank.len()];
        let mut witness_refs = vec![0u32; bank.witness_count()];
        for (position, &query) in live.iter().enumerate() {
            assert!(
                entry_pos[query] == usize::MAX,
                "query {query} is live twice"
            );
            entry_pos[query] = position;
            for witness in bank.entry_witnesses(query) {
                witness_refs[witness] += 1;
            }
        }
        let mut live_witnesses = Vec::new();
        let mut witness_pos = vec![usize::MAX; bank.witness_count()];
        for (index, &refs) in witness_refs.iter().enumerate() {
            if refs > 0 {
                witness_pos[index] = live_witnesses.len();
                live_witnesses.push(index);
            }
        }
        BankLiveSet {
            live_entries: live.to_vec(),
            entry_pos,
            witness_refs,
            live_witnesses,
            witness_pos,
        }
    }

    /// A live set with **no** query live — the starting point of the
    /// enrollment path: the windowed estimator re-admits only the
    /// entries whose lineage changed (via [`BankLiveSet::enroll`], the
    /// dual of the retirement the adaptive loop performs as queries
    /// converge), so an all-unchanged tick drives zero draws.
    pub fn empty(bank: &LineageBank) -> Self {
        Self::restrict(bank, &[])
    }

    /// Enrolls query `query`: it (re-)joins the live set, and every arena
    /// witness it references gains a reference; a witness whose count
    /// rises from zero rejoins the containment scan.  The exact dual of
    /// [`BankLiveSet::retire`]: enrolling after retiring restores the
    /// same membership and reference counts (dense positions may differ,
    /// which never affects evaluation).  Enrolling an already-live query
    /// is a no-op.
    ///
    /// # Panics
    /// Panics if `query` is out of range or `bank` has a different shape.
    pub fn enroll(&mut self, bank: &LineageBank, query: usize) {
        if self.entry_pos[query] != usize::MAX {
            return;
        }
        self.entry_pos[query] = self.live_entries.len();
        self.live_entries.push(query);
        for witness in bank.entry_witnesses(query) {
            self.witness_refs[witness] += 1;
            if self.witness_refs[witness] == 1 {
                self.witness_pos[witness] = self.live_witnesses.len();
                self.live_witnesses.push(witness);
            }
        }
    }

    /// Retires query `query`: it leaves the live set, and every arena
    /// witness only it still referenced leaves the containment scan.
    /// Retiring an already-retired query is a no-op.
    ///
    /// # Panics
    /// Panics if `query` is out of range or `bank` has a different shape.
    pub fn retire(&mut self, bank: &LineageBank, query: usize) {
        let position = self.entry_pos[query];
        if position == usize::MAX {
            return;
        }
        self.live_entries.swap_remove(position);
        if let Some(&moved) = self.live_entries.get(position) {
            self.entry_pos[moved] = position;
        }
        self.entry_pos[query] = usize::MAX;
        for witness in bank.entry_witnesses(query) {
            self.witness_refs[witness] -= 1;
            if self.witness_refs[witness] == 0 {
                let at = self.witness_pos[witness];
                self.live_witnesses.swap_remove(at);
                if let Some(&moved) = self.live_witnesses.get(at) {
                    self.witness_pos[moved] = at;
                }
                self.witness_pos[witness] = usize::MAX;
            }
        }
    }

    /// The live query indices (arbitrary order).
    pub fn live_queries(&self) -> &[usize] {
        &self.live_entries
    }

    /// `true` iff query `query` has not been retired.
    pub fn is_live(&self, query: usize) -> bool {
        self.entry_pos[query] != usize::MAX
    }

    /// Number of live queries.
    pub fn live_query_count(&self) -> usize {
        self.live_entries.len()
    }

    /// Number of arena witnesses still referenced by some live query —
    /// the per-draw containment-scan length of
    /// [`LineageBank::evaluate_live_into`].
    pub fn live_witness_count(&self) -> usize {
        self.live_witnesses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::{ConflictIndex, FactId, FdSet, FunctionalDependency, Schema};

    fn blocks_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", &["K", "V"]).unwrap();
        let mut db = Database::with_schema(schema);
        for (k, v) in [(1, 1), (1, 2), (2, 1), (2, 2), (3, 7)] {
            db.insert_values("R", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        db
    }

    fn evaluators(db: &Database, texts: &[&str]) -> Vec<QueryEvaluator> {
        texts
            .iter()
            .map(|t| QueryEvaluator::new(parse_query(db.schema(), t).unwrap()))
            .collect()
    }

    fn subsets(universe: usize) -> impl Iterator<Item = FactSet> {
        (0u32..(1 << universe)).map(move |mask| {
            FactSet::from_iter(
                universe,
                (0..universe)
                    .filter(move |i| (mask >> i) & 1 == 1)
                    .map(FactId::new),
            )
        })
    }

    #[test]
    fn bank_agrees_with_independent_lineages_on_all_subsets() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let singles: Vec<CompiledLineage> = evals
            .iter()
            .map(|e| CompiledLineage::compile(e, &db, &[]).unwrap().unwrap())
            .collect();
        let mut scratch = BankScratch::new();
        let mut hits = vec![false; bank.len()];
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch, &mut hits);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(hits[i], single.entails(&subset), "query {i}, {subset:?}");
            }
        }
    }

    #[test]
    fn empty_bank_compiles_and_evaluates() {
        let db = blocks_db();
        let bank = LineageBank::compile(&db, &[]).unwrap();
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        assert_eq!(bank.witness_count(), 0);
        assert!(!bank.has_fallback());
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }

    #[test]
    fn duplicate_queries_share_arena_witnesses() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let single = CompiledLineage::compile(&evals[0], &db, &[])
            .unwrap()
            .unwrap();
        // The arena holds each witness once, not once per duplicate.
        assert_eq!(bank.witness_count(), single.witness_count());
        assert_eq!(bank.query_witness_count(0), Some(single.witness_count()));
        assert_eq!(bank.query_witness_count(1), Some(single.witness_count()));
    }

    #[test]
    fn overlapping_queries_share_common_witnesses() {
        let db = blocks_db();
        // Both single-atom queries over block 1 and the R(x,y),R(z,y)
        // self-join absorb into singleton witnesses; the joint arena is
        // smaller than the sum of the parts.
        let evals = evaluators(&db, &["Ans() :- R(1, x)", "Ans() :- R(x, y), R(z, y)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let sum: usize = (0..2).map(|i| bank.query_witness_count(i).unwrap()).sum();
        assert!(bank.witness_count() < sum, "no sharing happened");
    }

    #[test]
    fn over_cap_query_falls_back_while_others_stay_compiled() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        // Cap 2: the full-scan query has 5 witnesses and overflows; the
        // block lookup has 2 and stays compiled.
        let bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        assert!(bank.is_fallback(0));
        assert!(!bank.is_fallback(1));
        assert!(bank.has_fallback());
        assert_eq!(bank.query_witness_count(0), None);
        assert_eq!(bank.query_witness_count(1), Some(2));
        let mut scratch = BankScratch::new();
        let mut hits = vec![true; 2];
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut hits);
        // Fallback entries are reported as false; the compiled entry is
        // answered on the bitset path.
        assert!(!hits[0]);
        assert!(hits[1]);
    }

    #[test]
    fn interrupted_compile_budget_degrades_the_whole_bank_to_fallback() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let budget = CompileBudget::unlimited().with_max_steps(1);
        let bank =
            LineageBank::compile_with_budget(&db, &queries, DEFAULT_WITNESS_CAP, &budget).unwrap();
        // No partial bank is ever kept: every entry falls back, even ones
        // the DFS would have finished before the budget fired.
        assert!(bank.is_fallback(0));
        assert!(bank.is_fallback(1));
        assert_eq!(bank.witness_count(), 0);
    }

    #[test]
    fn tripped_cancel_flag_interrupts_compilation() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y), R(z, y)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let budget = CompileBudget::unlimited().with_cancel_flag(Arc::clone(&flag));
        // The flag is only polled every CANCEL_CHECK_INTERVAL steps.
        flag.store(true, Ordering::Relaxed);
        assert!(budget.interrupted(CompileBudget::CANCEL_CHECK_INTERVAL));
        assert!(!budget.interrupted(CompileBudget::CANCEL_CHECK_INTERVAL + 1));
        flag.store(false, Ordering::Relaxed);
        assert!(!budget.interrupted(CompileBudget::CANCEL_CHECK_INTERVAL));
        // A tripped flag never errors or panics compilation: the fixture's
        // DFS finishes under one poll interval, so the bank still compiles.
        flag.store(true, Ordering::Relaxed);
        let bank =
            LineageBank::compile_with_budget(&db, &queries, DEFAULT_WITNESS_CAP, &budget).unwrap();
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn unlimited_budget_compiles_identically_to_the_unbudgeted_path() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let plain = LineageBank::compile(&db, &queries).unwrap();
        let budgeted = LineageBank::compile_with_budget(
            &db,
            &queries,
            DEFAULT_WITNESS_CAP,
            &CompileBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(plain.witness_count(), budgeted.witness_count());
        let mut scratch_a = BankScratch::new();
        let mut scratch_b = BankScratch::new();
        let mut hits_a = vec![false; plain.len()];
        let mut hits_b = vec![false; budgeted.len()];
        for subset in subsets(db.len()) {
            plain.evaluate_into(&subset, &mut scratch_a, &mut hits_a);
            budgeted.evaluate_into(&subset, &mut scratch_b, &mut hits_b);
            assert_eq!(hits_a, hits_b, "{subset:?}");
        }
    }

    #[test]
    fn live_evaluation_matches_full_evaluation_under_any_retirement_order() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut scratch = BankScratch::new();
        let mut full_hits = vec![false; bank.len()];
        let mut live_hits = vec![false; bank.len()];
        // Retire queries one by one; after every retirement the live
        // evaluation must agree with the full evaluation on the survivors,
        // over every subset of the universe.
        for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
            let mut live = BankLiveSet::full(&bank);
            assert_eq!(live.live_query_count(), 4);
            assert_eq!(live.live_witness_count(), bank.witness_count());
            for (step, &retired) in order.iter().enumerate() {
                for subset in subsets(db.len()) {
                    bank.evaluate_into(&subset, &mut scratch, &mut full_hits);
                    bank.evaluate_live_into(&live, &subset, &mut scratch, &mut live_hits);
                    for &q in live.live_queries() {
                        assert_eq!(live_hits[q], full_hits[q], "step {step}, query {q}");
                    }
                }
                live.retire(&bank, retired);
                assert!(!live.is_live(retired));
                assert_eq!(live.live_query_count(), 4 - step - 1);
            }
            assert_eq!(live.live_witness_count(), 0);
        }
    }

    #[test]
    fn retirement_shrinks_the_witness_scan_and_keeps_shared_witnesses() {
        let db = blocks_db();
        // Queries 0 and 1 are duplicates (all witnesses shared); query 2 is
        // disjoint from them.
        let evals = evaluators(
            &db,
            &["Ans() :- R(1, x)", "Ans() :- R(1, x)", "Ans() :- R(2, x)"],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut live = BankLiveSet::full(&bank);
        let all = bank.witness_count();
        // Retiring one duplicate frees nothing: its twin still references
        // every witness.
        live.retire(&bank, 0);
        assert_eq!(live.live_witness_count(), all);
        // Retiring the twin frees that query's witnesses.
        live.retire(&bank, 1);
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(2).unwrap()
        );
        // Retiring twice is a no-op.
        live.retire(&bank, 1);
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(2).unwrap()
        );
        live.retire(&bank, 2);
        assert_eq!(live.live_witness_count(), 0);
        assert_eq!(live.live_query_count(), 0);
    }

    #[test]
    fn restricted_live_set_equals_full_set_after_retirements() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &["Ans() :- R(1, x)", "Ans() :- R(x, y)", "Ans() :- R(2, x)"],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut incremental = BankLiveSet::full(&bank);
        incremental.retire(&bank, 1);
        let restricted = BankLiveSet::restrict(&bank, &[0, 2]);
        assert_eq!(
            incremental.live_witness_count(),
            restricted.live_witness_count()
        );
        let mut a: Vec<usize> = incremental.live_queries().to_vec();
        let mut b: Vec<usize> = restricted.live_queries().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn live_set_handles_fallback_entries() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        assert!(bank.is_fallback(0));
        let mut live = BankLiveSet::full(&bank);
        // The fallback entry contributes no arena witnesses.
        assert_eq!(
            live.live_witness_count(),
            bank.query_witness_count(1).unwrap()
        );
        let mut scratch = BankScratch::new();
        let mut hits = vec![true; 2];
        bank.evaluate_live_into(&live, &db.all_facts(), &mut scratch, &mut hits);
        assert!(!hits[0], "fallback entries are reported false");
        assert!(hits[1]);
        live.retire(&bank, 0);
        assert_eq!(live.live_queries(), &[1]);
        hits = vec![true; 2];
        bank.evaluate_live_into(&live, &db.all_facts(), &mut scratch, &mut hits);
        assert!(hits[0], "retired entries are left untouched");
        assert!(hits[1]);
    }

    #[test]
    fn shared_compile_matches_the_unplanned_baseline() {
        let db = blocks_db();
        // Overlapping joins sharing the R(1, x) prefix, a duplicate, an
        // unsatisfiable query, and a full scan that overflows a tiny cap.
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(1, x), R(x, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
                "Ans() :- R(x, y)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        for cap in [DEFAULT_WITNESS_CAP, 2] {
            let shared = LineageBank::compile_with_cap(&db, &queries, cap).unwrap();
            let baseline = LineageBank::compile_unplanned_with_cap(&db, &queries, cap).unwrap();
            let mut scratch = BankScratch::new();
            let mut shared_hits = vec![false; shared.len()];
            let mut baseline_hits = vec![false; baseline.len()];
            for i in 0..queries.len() {
                assert_eq!(shared.is_fallback(i), baseline.is_fallback(i), "entry {i}");
                assert_eq!(
                    shared.query_witness_count(i),
                    baseline.query_witness_count(i),
                    "entry {i}"
                );
            }
            for subset in subsets(db.len()) {
                shared.evaluate_into(&subset, &mut scratch, &mut shared_hits);
                baseline.evaluate_into(&subset, &mut scratch, &mut baseline_hits);
                assert_eq!(shared_hits, baseline_hits, "cap {cap}, {subset:?}");
            }
        }
    }

    #[test]
    fn candidate_substitution_groups_entries_in_the_trie() {
        let db = blocks_db();
        // One parameterised query, two candidates; grounding makes the
        // first one identical to the Boolean form, so all three share.
        let lookup = evaluators(&db, &["Ans(k) :- R(k, x), R(2, x)"]);
        let boolean = evaluators(&db, &["Ans() :- R(1, x), R(2, x)"]);
        let one = [Value::int(1)];
        let two = [Value::int(2)];
        let queries: Vec<BankQueryRef<'_>> = vec![
            (&lookup[0], &one),
            (&lookup[0], &two),
            (&boolean[0], &[] as &[Value]),
        ];
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let single = CompiledLineage::compile(&boolean[0], &db, &[])
            .unwrap()
            .unwrap();
        assert_eq!(bank.query_witness_count(0), Some(single.witness_count()));
        assert_eq!(bank.query_witness_count(2), Some(single.witness_count()));
        // Entries 0 and 2 are the same grounded query: their witnesses
        // coincide in the arena.
        let mut scratch = BankScratch::new();
        let mut hits = vec![false; 3];
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch, &mut hits);
            assert_eq!(hits[0], hits[2], "{subset:?}");
            assert_eq!(hits[0], single.entails(&subset), "{subset:?}");
        }
    }

    #[test]
    fn empty_body_entries_compile_to_the_empty_witness() {
        let db = blocks_db();
        let query = crate::ConjunctiveQuery::boolean(db.schema(), vec![]).unwrap();
        let evaluator = QueryEvaluator::new(query);
        let queries: Vec<BankQueryRef<'_>> = vec![(&evaluator, &[] as &[Value])];
        let bank = LineageBank::compile(&db, &queries).unwrap();
        assert_eq!(bank.query_witness_count(0), Some(1));
        let mut scratch = BankScratch::new();
        let mut hits = vec![false; 1];
        bank.evaluate_into(&FactSet::empty(db.len()), &mut scratch, &mut hits);
        assert!(hits[0], "an empty body is entailed by the empty subset");
    }

    #[test]
    fn refresh_replays_mutations_and_matches_a_fresh_compile() {
        let mut db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile(&db, &queries).unwrap();
        // Already current: nothing to replay.
        assert_eq!(bank.refresh(&db, &queries).unwrap(), 0);
        // Mutate: extend block 1, create the first R(9, 9) witness, and
        // delete R(2, 1).
        db.insert_values("R", [Value::int(1), Value::int(3)])
            .unwrap();
        db.insert_values("R", [Value::int(9), Value::int(9)])
            .unwrap();
        let gone = ucqa_db::Fact::new(
            db.schema().relation_id("R").unwrap(),
            vec![Value::int(2), Value::int(1)],
        );
        db.delete(db.fact_id(&gone).unwrap()).unwrap();
        assert_eq!(bank.refresh(&db, &queries).unwrap(), 3);
        assert_eq!(bank.version(), db.version());
        assert_eq!(bank.universe(), db.len());
        // The refreshed bank is structurally identical to a fresh shared
        // compile: same arena size, same per-entry witness counts, same
        // booleans on every subset.
        let fresh = LineageBank::compile(&db, &queries).unwrap();
        assert_eq!(bank.witness_count(), fresh.witness_count());
        let mut scratch_a = BankScratch::new();
        let mut scratch_b = BankScratch::new();
        let mut hits_a = vec![false; bank.len()];
        let mut hits_b = vec![false; fresh.len()];
        for i in 0..queries.len() {
            assert_eq!(bank.is_fallback(i), fresh.is_fallback(i), "entry {i}");
            assert_eq!(
                bank.query_witness_count(i),
                fresh.query_witness_count(i),
                "entry {i}"
            );
        }
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch_a, &mut hits_a);
            fresh.evaluate_into(&subset, &mut scratch_b, &mut hits_b);
            assert_eq!(hits_a, hits_b, "{subset:?}");
        }
    }

    #[test]
    fn refresh_keeps_fallback_entries_and_degrades_over_cap_entries() {
        let mut db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        // Cap 3: the full scan (5 witnesses) falls back, the block lookup
        // (2 witnesses) compiles.
        let mut bank = LineageBank::compile_with_cap(&db, &queries, 3).unwrap();
        assert!(bank.is_fallback(0));
        assert!(!bank.is_fallback(1));
        // Two more block-1 facts push the lookup past the cap on refresh;
        // the fallback entry stays fallback.
        db.insert_values("R", [Value::int(1), Value::int(8)])
            .unwrap();
        db.insert_values("R", [Value::int(1), Value::int(9)])
            .unwrap();
        assert_eq!(bank.refresh_with_cap(&db, &queries, 3).unwrap(), 2);
        assert!(bank.is_fallback(0));
        assert!(bank.is_fallback(1), "over-cap refresh degrades to fallback");
    }

    #[test]
    #[should_panic(expected = "refresh requires the bank's own query list")]
    fn refresh_with_a_mismatched_query_list_panics() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile(&db, &queries).unwrap();
        bank.refresh(&db, &[]).unwrap();
    }

    #[test]
    fn arity_mismatch_aborts_compilation() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans(x) :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        assert!(LineageBank::compile(&db, &queries).is_err());
    }

    #[test]
    #[should_panic(expected = "hits length mismatch")]
    fn mismatched_hits_slice_panics() {
        let db = blocks_db();
        let evals = evaluators(&db, &["Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut scratch = BankScratch::new();
        bank.evaluate_into(&db.all_facts(), &mut scratch, &mut []);
    }

    /// Membership and refcount view of a live set, position-independent.
    fn live_snapshot(live: &BankLiveSet) -> (Vec<usize>, Vec<u32>, Vec<usize>) {
        let mut entries = live.live_queries().to_vec();
        entries.sort_unstable();
        let mut witnesses = live.live_witnesses.clone();
        witnesses.sort_unstable();
        (entries, live.witness_refs.clone(), witnesses)
    }

    #[test]
    fn enroll_is_the_exact_dual_of_retire() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(1, x), R(2, x)",
                "Ans() :- R(9, 9)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let full = live_snapshot(&BankLiveSet::full(&bank));
        let mut live = BankLiveSet::full(&bank);
        // Retire everything, in an order that exercises witness sharing,
        // then enroll everything back: membership and reference counts
        // return to the full set exactly.
        for query in [1, 3, 0, 2] {
            live.retire(&bank, query);
        }
        assert_eq!(live.live_query_count(), 0);
        assert_eq!(live.live_witness_count(), 0);
        for query in [2, 0, 3, 1] {
            live.enroll(&bank, query);
            live.enroll(&bank, query); // enrolling a live query is a no-op
        }
        assert_eq!(live_snapshot(&live), full);
        // And the restored set evaluates identically to the full one.
        let mut scratch = BankScratch::new();
        let mut full_hits = vec![false; bank.len()];
        let mut live_hits = vec![false; bank.len()];
        for subset in subsets(db.len()) {
            bank.evaluate_into(&subset, &mut scratch, &mut full_hits);
            bank.evaluate_live_into(&live, &subset, &mut scratch, &mut live_hits);
            assert_eq!(full_hits, live_hits, "{subset:?}");
        }
    }

    #[test]
    fn empty_plus_enrollment_matches_restrict() {
        let db = blocks_db();
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(x, y), R(z, y)",
                "Ans() :- R(2, x)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let bank = LineageBank::compile(&db, &queries).unwrap();
        let mut enrolled = BankLiveSet::empty(&bank);
        assert_eq!(enrolled.live_query_count(), 0);
        enrolled.enroll(&bank, 2);
        enrolled.enroll(&bank, 0);
        let restricted = BankLiveSet::restrict(&bank, &[0, 2]);
        assert_eq!(live_snapshot(&enrolled), live_snapshot(&restricted));
        assert!(enrolled.is_live(0) && !enrolled.is_live(1) && enrolled.is_live(2));
    }

    fn blocks_sigma(db: &Database) -> FdSet {
        let mut sigma = FdSet::new();
        sigma.add(FunctionalDependency::from_names(db.schema(), "R", &["K"], &["V"]).unwrap());
        sigma
    }

    #[test]
    fn fingerprints_identify_unchanged_lineage_across_refreshes() {
        let mut db = blocks_db();
        let sigma = blocks_sigma(&db);
        let evals = evaluators(
            &db,
            &[
                "Ans() :- R(1, x)",
                "Ans() :- R(3, x)",
                "Ans() :- R(1, x), R(2, x)",
            ],
        );
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile(&db, &queries).unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        let before = bank.fingerprints(&structure);
        // Identical lineage hashes identically within one compilation
        // only when the witness sets coincide; distinct queries differ.
        assert_ne!(before[0], before[1]);

        // A current bank reports an empty delta.
        let noop = bank
            .refresh_with_delta(&db, &queries, &before, &structure)
            .unwrap();
        assert_eq!(noop.replayed, 0);
        assert!(noop.changed.iter().all(|&c| !c));
        assert_eq!(noop.fingerprints, before);

        // A block-3 insert rewrites entry 1's lineage and — because the
        // new fact enters every witness's universe — leaves entries 0 and
        // 2's witness id-sets and conflict components untouched: their
        // fingerprints survive even though the arena was rebuilt.
        db.insert_values("R", [Value::int(3), Value::int(8)])
            .unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        let delta = bank
            .refresh_with_delta(&db, &queries, &before, &structure)
            .unwrap();
        assert_eq!(delta.replayed, 1);
        assert_eq!(delta.changed, vec![false, true, false]);
        assert_eq!(delta.changed_entries().collect::<Vec<_>>(), vec![1]);
        let after = &delta.fingerprints;
        assert_eq!(after[0], before[0]);
        assert_ne!(after[1], before[1]);
        assert_eq!(after[2], before[2]);

        // The refreshed fingerprints agree with a from-scratch compile:
        // the hash covers witness id-sets and their conflict components,
        // never arena layout.
        let fresh = LineageBank::compile(&db, &queries).unwrap();
        assert_eq!(after, &fresh.fingerprints(&structure));
        // And `witnesses_of` exposes the id-sets the hash ranges over.
        let ours: Vec<Vec<FactId>> = bank
            .witnesses_of(1)
            .unwrap()
            .iter()
            .map(|w| w.iter().collect())
            .collect();
        let theirs: Vec<Vec<FactId>> = fresh
            .witnesses_of(1)
            .unwrap()
            .iter()
            .map(|w| w.iter().collect())
            .collect();
        let (mut ours, mut theirs) = (ours, theirs);
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn fallback_entries_have_no_fingerprint_and_always_read_changed() {
        let mut db = blocks_db();
        let sigma = blocks_sigma(&db);
        let evals = evaluators(&db, &["Ans() :- R(x, y)", "Ans() :- R(1, x)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile_with_cap(&db, &queries, 2).unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        assert!(bank.is_fallback(0));
        assert_eq!(bank.entry_fingerprint(0, &structure), None);
        assert!(bank.witnesses_of(0).is_none());
        assert!(bank.entry_fingerprint(1, &structure).is_some());
        let before = bank.fingerprints(&structure);
        // Any replay flags the fallback entry — there is no witness set
        // to prove unchanged — while the untouched compiled entry stays
        // fresh.
        db.insert_values("R", [Value::int(5), Value::int(5)])
            .unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        let delta = bank
            .refresh_with_delta(&db, &queries, &before, &structure)
            .unwrap();
        assert_eq!(delta.replayed, 1);
        assert_eq!(delta.changed, vec![true, false]);
    }

    #[test]
    fn fingerprints_track_conflict_context_not_just_lineage() {
        // The reuse-soundness counterexample: a membership query whose
        // witness set survives a tick untouched while the witness fact's
        // block gains a member.  The answer probability moves (the
        // witness is drawn under a bigger block), so the fingerprint
        // must move with it.
        let mut db = blocks_db();
        let sigma = blocks_sigma(&db);
        let evals = evaluators(&db, &["Ans() :- R(1, 1)"]);
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let mut bank = LineageBank::compile(&db, &queries).unwrap();
        let before = bank.fingerprints(&ConflictIndex::build(&db, &sigma).structure());

        // R(1, 9) matches no query atom — the witness set stays
        // {R(1, 1)} — but joins the witness's conflict block.
        db.insert_values("R", [Value::int(1), Value::int(9)])
            .unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        let delta = bank
            .refresh_with_delta(&db, &queries, &before, &structure)
            .unwrap();
        assert_eq!(delta.changed, vec![true], "conflict growth must re-enroll");
        let witnesses: Vec<Vec<FactId>> = bank
            .witnesses_of(0)
            .unwrap()
            .iter()
            .map(|w| w.iter().collect())
            .collect();
        assert_eq!(witnesses, vec![vec![FactId::new(0)]], "lineage untouched");

        // A consistent insert under a fresh key touches no component:
        // the fingerprint survives and the entry stays reusable.
        db.insert_values("R", [Value::int(9), Value::int(9)])
            .unwrap();
        let structure = ConflictIndex::build(&db, &sigma).structure();
        let delta = bank
            .refresh_with_delta(&db, &queries, &delta.fingerprints, &structure)
            .unwrap();
        assert_eq!(delta.changed, vec![false]);
    }

    /// A database where costed plans destroy prefix sharing: S-keys are
    /// rare (posting length 1), R('h', ·) is hot (posting length 3), so
    /// every costed plan leads with its own S atom and the shared R work
    /// moves to the suffix.
    fn suffix_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("S", &["K", "V"]).unwrap();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        for k in 0..4 {
            db.insert_values("S", [Value::int(k), Value::int(100 + k)])
                .unwrap();
        }
        for b in 0..3 {
            db.insert_values("R", [Value::str("h"), Value::int(b)])
                .unwrap();
        }
        db
    }

    #[test]
    fn shared_suffixes_of_costed_plans_are_enumerated_once() {
        // Four queries S(k, x), R('h', y) with distinct k: coverage-greedy
        // keeps the written order and shares nothing (distinct first
        // atoms); costed plans also lead with the rare S atom, so the
        // closed R('h', y) suffix recurs four times — one subtree group,
        // filled once, replayed at every occurrence.
        let db = suffix_db();
        let texts: Vec<String> = (0..4)
            .map(|k| format!("Ans() :- S({k}, x), R('h', y)"))
            .collect();
        let evals: Vec<QueryEvaluator> = texts
            .iter()
            .map(|t| QueryEvaluator::with_stats(parse_query(db.schema(), t).unwrap(), &db).unwrap())
            .collect();
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let (bank, stats) = LineageBank::compile_instrumented(
            &db,
            &queries,
            DEFAULT_WITNESS_CAP,
            &CompileBudget::unlimited(),
        )
        .unwrap();
        assert!(
            stats.shared_subtrees >= 1,
            "the R('h', y) suffix must form a group: {stats:?}"
        );
        assert_eq!(stats.replays, 4, "every occurrence replays: {stats:?}");
        // Fill pass: 4 S probes + one R('h', ·) walk (3 candidates), not
        // four walks.
        assert_eq!(stats.steps, 4 + 3, "shared fill, no repeated walks");
        // Bit-identical to the unshared, unplanned baseline.
        let baseline = LineageBank::compile_unplanned(&db, &queries).unwrap();
        for entry in 0..queries.len() {
            let canon = |b: &LineageBank| -> Vec<Vec<FactId>> {
                let mut w: Vec<Vec<FactId>> = b
                    .witnesses_of(entry)
                    .unwrap()
                    .iter()
                    .map(|w| w.iter().collect())
                    .collect();
                w.sort();
                w
            };
            assert_eq!(canon(&bank), canon(&baseline), "entry {entry}");
        }
    }

    #[test]
    fn correlated_shared_subtrees_memoize_per_binding() {
        // The shared suffix R(x, y) reads x, bound by each query's own S
        // atom — the memo key is the bound symbol, so occurrences binding
        // the same x share one fill while different bindings fill their
        // own.  Either way the witness sets match the unplanned baseline.
        let mut schema = Schema::new();
        schema.add_relation("S", &["K", "V"]).unwrap();
        schema.add_relation("R", &["A", "B"]).unwrap();
        let mut db = Database::with_schema(schema);
        // S keys 0 and 1 both map to value 7; key 2 maps to 8.
        for (k, v) in [(0, 7), (1, 7), (2, 8)] {
            db.insert_values("S", [Value::int(k), Value::int(v)])
                .unwrap();
        }
        for (a, b) in [(7, 1), (7, 2), (8, 3)] {
            db.insert_values("R", [Value::int(a), Value::int(b)])
                .unwrap();
        }
        let texts: Vec<String> = (0..3)
            .map(|k| format!("Ans() :- S({k}, x), R(x, y)"))
            .collect();
        let evals: Vec<QueryEvaluator> = texts
            .iter()
            .map(|t| QueryEvaluator::with_stats(parse_query(db.schema(), t).unwrap(), &db).unwrap())
            .collect();
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let (bank, stats) = LineageBank::compile_instrumented(
            &db,
            &queries,
            DEFAULT_WITNESS_CAP,
            &CompileBudget::unlimited(),
        )
        .unwrap();
        assert!(stats.shared_subtrees >= 1, "{stats:?}");
        assert_eq!(stats.replays, 3, "one replay per occurrence: {stats:?}");
        let baseline = LineageBank::compile_unplanned(&db, &queries).unwrap();
        for entry in 0..queries.len() {
            let canon = |b: &LineageBank| -> Vec<Vec<FactId>> {
                let mut w: Vec<Vec<FactId>> = b
                    .witnesses_of(entry)
                    .unwrap()
                    .iter()
                    .map(|w| w.iter().collect())
                    .collect();
                w.sort();
                w
            };
            assert_eq!(canon(&bank), canon(&baseline), "entry {entry}");
        }
    }

    #[test]
    fn subtree_replay_preserves_overflow_accounting() {
        // Cap 1: the shared R('h', y) suffix yields 3 witnesses per
        // entry, so every entry overflows — through the replay path just
        // as it would through the direct DFS.
        let db = suffix_db();
        let texts: Vec<String> = (0..4)
            .map(|k| format!("Ans() :- S({k}, x), R('h', y)"))
            .collect();
        let evals: Vec<QueryEvaluator> = texts
            .iter()
            .map(|t| QueryEvaluator::with_stats(parse_query(db.schema(), t).unwrap(), &db).unwrap())
            .collect();
        let queries: Vec<BankQueryRef<'_>> = evals.iter().map(|e| (e, &[] as &[Value])).collect();
        let shared = LineageBank::compile_with_cap(&db, &queries, 1).unwrap();
        let baseline = LineageBank::compile_unplanned_with_cap(&db, &queries, 1).unwrap();
        for entry in 0..queries.len() {
            assert!(shared.is_fallback(entry), "entry {entry} must overflow");
            assert_eq!(
                shared.is_fallback(entry),
                baseline.is_fallback(entry),
                "entry {entry}"
            );
        }
    }
}
