//! Homomorphism-based evaluation of conjunctive queries.
//!
//! The evaluator compiles the query once at construction: variables are
//! interned into dense *slots* and every atom's terms are resolved to
//! either a constant or a slot index.  The backtracking search then binds
//! values by slot into a flat `Vec<Option<&Value>>` — no `BTreeMap`
//! operations, no `Variable`/`Value` clones on the search path.  Named
//! [`Bindings`] are only materialised when a full homomorphism is reported
//! back to the caller.

use std::collections::{BTreeMap, BTreeSet};

use ucqa_db::{Database, FactId, FactSet, RelationId, Value};

use crate::{ConjunctiveQuery, QueryError, Term, Variable};

/// A variable assignment produced by a homomorphism from a query into a
/// database.
pub type Bindings = BTreeMap<Variable, Value>;

/// A single homomorphism `h` from a query `Q` into (a subset of) a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    /// The variable bindings of `h`.
    pub bindings: Bindings,
    /// The image `h(Q)`: the facts hit by the atoms of `Q`, as ids into the
    /// underlying database (deduplicated, sorted).
    pub image: Vec<FactId>,
}

impl Homomorphism {
    /// Applies the homomorphism to the answer variables, producing the
    /// answer tuple `h(x̄)`.
    pub fn answer_tuple(&self, query: &ConjunctiveQuery) -> Vec<Value> {
        query
            .answer_vars()
            .iter()
            .map(|v| {
                self.bindings
                    .get(v)
                    .expect("answer variables are safe, so every homomorphism binds them")
                    .clone()
            })
            .collect()
    }
}

/// An atom term resolved against the interned variable slots.
#[derive(Debug, Clone)]
enum SlotTerm {
    /// A constant that the fact value must equal.
    Const(Value),
    /// A variable, identified by its slot index.
    Var(usize),
}

/// An atom with terms resolved to slots.
#[derive(Debug, Clone)]
struct CompiledAtom {
    relation: RelationId,
    terms: Vec<SlotTerm>,
}

/// Evaluates conjunctive queries over sub-databases via backtracking join.
///
/// The evaluator is constructed once per query and can then be applied to
/// many subsets `D' ⊆ D` (the typical usage pattern of the samplers:
/// evaluate the same query on thousands of sampled repairs).
#[derive(Debug, Clone)]
pub struct QueryEvaluator {
    query: ConjunctiveQuery,
    /// Slot index → variable, in first-occurrence order.
    slots: Vec<Variable>,
    /// Atoms with terms resolved to slots.
    atoms: Vec<CompiledAtom>,
    /// Answer variable positions resolved to slots.
    answer_slots: Vec<usize>,
}

impl QueryEvaluator {
    /// Creates an evaluator for `query`, interning its variables into
    /// dense slots.
    pub fn new(query: ConjunctiveQuery) -> Self {
        let mut slots: Vec<Variable> = Vec::new();
        let slot_of = |slots: &mut Vec<Variable>, var: &Variable| -> usize {
            match slots.iter().position(|v| v == var) {
                Some(i) => i,
                None => {
                    slots.push(var.clone());
                    slots.len() - 1
                }
            }
        };
        let atoms: Vec<CompiledAtom> = query
            .atoms()
            .iter()
            .map(|atom| {
                // The search's backtrack bookkeeping records the term
                // positions bound per frame in a u64 bitmask.
                assert!(
                    atom.terms().len() <= 64,
                    "atoms with more than 64 terms are not supported"
                );
                CompiledAtom {
                    relation: atom.relation(),
                    terms: atom
                        .terms()
                        .iter()
                        .map(|term| match term {
                            Term::Const(c) => SlotTerm::Const(c.clone()),
                            Term::Var(v) => SlotTerm::Var(slot_of(&mut slots, v)),
                        })
                        .collect(),
                }
            })
            .collect();
        let answer_slots = query
            .answer_vars()
            .iter()
            .map(|v| {
                slots
                    .iter()
                    .position(|s| s == v)
                    .expect("answer variables are safe, so they occur in the body")
            })
            .collect();
        QueryEvaluator {
            query,
            slots,
            atoms,
            answer_slots,
        }
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Enumerates all homomorphisms from the query into the sub-database
    /// `subset ⊆ db`.
    ///
    /// If `max` is `Some(n)`, enumeration stops after `n` homomorphisms.
    pub fn homomorphisms(
        &self,
        db: &Database,
        subset: &FactSet,
        max: Option<usize>,
    ) -> Vec<Homomorphism> {
        let mut results = Vec::new();
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.search(
            db,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |bindings, image| {
                results.push(self.materialize(bindings, image));
                max.is_some_and(|limit| results.len() >= limit)
            },
        );
        results
    }

    /// Returns `true` iff at least one homomorphism exists, i.e. `D' ⊨ Q`
    /// for Boolean queries (and "Q has some answer" otherwise).
    pub fn entails(&self, db: &Database, subset: &FactSet) -> bool {
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.search(db, subset, 0, &mut bindings, &mut image, &mut |_, _| true)
    }

    /// The set of answers `Q(D')`.
    pub fn answers(&self, db: &Database, subset: &FactSet) -> BTreeSet<Vec<Value>> {
        let mut answers = BTreeSet::new();
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.search(
            db,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |bindings, _| {
                answers.insert(
                    self.answer_slots
                        .iter()
                        .map(|&slot| {
                            bindings[slot]
                                .expect("answer slots are bound at every leaf")
                                .clone()
                        })
                        .collect(),
                );
                false
            },
        );
        answers
    }

    /// Returns `true` iff the tuple `candidate` is an answer to the query
    /// over `D'`, i.e. `candidate ∈ Q(D')`.
    pub fn has_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<bool, QueryError> {
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(candidate, &mut bindings)? {
            return Ok(false);
        }
        let mut image = Vec::new();
        Ok(self.search(db, subset, 0, &mut bindings, &mut image, &mut |_, _| true))
    }

    /// Enumerates the homomorphisms `h` with `h(x̄) = candidate`, without a
    /// limit.  Used by the lower-bound machinery and the lineage compiler,
    /// which need the image facts `h(Q)`.
    pub fn homomorphisms_for_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<Vec<Homomorphism>, QueryError> {
        let mut results = Vec::new();
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(candidate, &mut bindings)? {
            return Ok(results);
        }
        let mut image = Vec::new();
        self.search(
            db,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |bindings, image| {
                results.push(self.materialize(bindings, image));
                false
            },
        );
        Ok(results)
    }

    /// Visits the image `h(Q)` of every homomorphism `h` with
    /// `h(x̄) = candidate`, without materialising bindings.  The visitor
    /// returns `true` to stop enumeration early; the overall return value
    /// is `true` iff enumeration was stopped.
    ///
    /// This is the enumeration backend of the lineage compiler: images
    /// arrive unsorted and may contain duplicate fact ids (facts hit by
    /// several atoms).
    pub fn for_each_answer_image<F>(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
        mut visitor: F,
    ) -> Result<bool, QueryError>
    where
        F: FnMut(&[FactId]) -> bool,
    {
        let mut bindings: Vec<Option<&Value>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(candidate, &mut bindings)? {
            return Ok(false);
        }
        let mut image = Vec::new();
        Ok(
            self.search(db, subset, 0, &mut bindings, &mut image, &mut |_, image| {
                visitor(image)
            }),
        )
    }

    /// Binds the answer slots to the candidate values, returning `Ok(false)`
    /// if a repeated answer variable receives two different values.
    fn prebind_candidate<'d>(
        &self,
        candidate: &'d [Value],
        bindings: &mut [Option<&'d Value>],
    ) -> Result<bool, QueryError> {
        if candidate.len() != self.answer_slots.len() {
            return Err(QueryError::AnswerArityMismatch {
                expected: self.answer_slots.len(),
                actual: candidate.len(),
            });
        }
        for (&slot, value) in self.answer_slots.iter().zip(candidate) {
            match bindings[slot] {
                Some(existing) if existing != value => return Ok(false),
                _ => bindings[slot] = Some(value),
            }
        }
        Ok(true)
    }

    /// Builds a caller-facing [`Homomorphism`] from slot bindings and a raw
    /// image (leaf-time only — never on the backtracking path).
    fn materialize(&self, bindings: &[Option<&Value>], image: &[FactId]) -> Homomorphism {
        let named: Bindings = self
            .slots
            .iter()
            .zip(bindings)
            .filter_map(|(var, value)| value.map(|v| (var.clone(), v.clone())))
            .collect();
        let mut image = image.to_vec();
        image.sort();
        image.dedup();
        Homomorphism {
            bindings: named,
            image,
        }
    }

    /// The backtracking join.  `sink` is invoked at every leaf with the
    /// current slot bindings and the (unsorted, possibly duplicated) image;
    /// it returns `true` to stop the search.  The overall return value is
    /// `true` iff the search was stopped by the sink.
    fn search<'d, F>(
        &self,
        db: &'d Database,
        subset: &FactSet,
        atom_index: usize,
        bindings: &mut Vec<Option<&'d Value>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<&'d Value>], &[FactId]) -> bool,
    {
        if atom_index == self.atoms.len() {
            return sink(bindings, image);
        }
        let atom = &self.atoms[atom_index];
        for &fact_id in db.facts_of(atom.relation) {
            if !subset.contains(fact_id) {
                continue;
            }
            let fact = db.fact(fact_id);
            // Try to unify the atom's terms with the fact's values.  The
            // slots bound by this frame are tracked in a bitmask so they
            // can be unbound on backtrack without heap allocation
            // (`QueryEvaluator::new` rejects atoms with more than 64
            // terms).
            let mut bound_here: u64 = 0;
            let mut ok = true;
            for (position, (term, value)) in atom.terms.iter().zip(fact.values()).enumerate() {
                match term {
                    SlotTerm::Const(c) => {
                        if c != value {
                            ok = false;
                            break;
                        }
                    }
                    SlotTerm::Var(slot) => match bindings[*slot] {
                        Some(bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings[*slot] = Some(value);
                            bound_here |= 1 << position;
                        }
                    },
                }
            }
            if ok {
                image.push(fact_id);
                let stop = self.search(db, subset, atom_index + 1, bindings, image, sink);
                image.pop();
                if stop {
                    self.unbind(atom, bound_here, bindings);
                    return true;
                }
            }
            self.unbind(atom, bound_here, bindings);
        }
        false
    }

    /// Clears the bindings introduced by one frame, identified by the term
    /// positions recorded in `bound_here`.
    fn unbind(&self, atom: &CompiledAtom, bound_here: u64, bindings: &mut [Option<&Value>]) {
        let mut mask = bound_here;
        while mask != 0 {
            let position = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let SlotTerm::Var(slot) = &atom.terms[position] {
                bindings[*slot] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::Schema;

    /// A small graph encoded as a database, following the B.1 reduction
    /// layout: V(node, colour), E(src, dst), T(flag).
    fn graph_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("E", &["S", "T"]).unwrap();
        schema.add_relation("T", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        for node in ["u", "v", "w"] {
            db.insert_values("V", [Value::str(node), Value::int(0)])
                .unwrap();
            db.insert_values("V", [Value::str(node), Value::int(1)])
                .unwrap();
        }
        db.insert_values("E", [Value::str("u"), Value::str("v")])
            .unwrap();
        db.insert_values("E", [Value::str("v"), Value::str("w")])
            .unwrap();
        db.insert_values("T", [Value::int(1)]).unwrap();
        db
    }

    #[test]
    fn boolean_entailment() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V(x, z), V(y, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        // Full database contains V(u,1), V(v,1), E(u,v), T(1) → entailed.
        assert!(eval.entails(&db, &db.all_facts()));
        // Remove all colour-1 facts for u: V(u,1) is fact id 1.
        let mut subset = db.all_facts();
        subset.remove(FactId::new(1));
        subset.remove(FactId::new(3)); // V(v,1)
        assert!(!eval.entails(&db, &subset));
    }

    #[test]
    fn answers_and_has_answer() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x, y) :- E(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::str("u"), Value::str("v")]));
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("v"), Value::str("w")])
            .unwrap());
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("w"), Value::str("u")])
            .unwrap());
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("v")])
            .is_err());
    }

    #[test]
    fn homomorphism_images_contain_hit_facts() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V(x, 1), T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval.homomorphisms(&db, &db.all_facts(), None);
        // One homomorphism per node (x ∈ {u, v, w}).
        assert_eq!(homs.len(), 3);
        for h in &homs {
            assert_eq!(h.image.len(), 2); // a V fact plus the T fact
        }
    }

    #[test]
    fn constants_in_atoms_filter_matches() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, 0)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert_eq!(eval.answers(&db, &db.all_facts()).len(), 3);
        let q = parse_query(db.schema(), "Ans(x) :- V('u', x)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::int(0)]));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let db = graph_db();
        // E(x, x) has no match in this graph (no self loops).
        let q = parse_query(db.schema(), "Ans() :- E(x, x)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &db.all_facts()));
    }

    #[test]
    fn homomorphisms_for_answer_prebinds_answer_vars() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval
            .homomorphisms_for_answer(&db, &db.all_facts(), &[Value::str("u")])
            .unwrap();
        assert_eq!(homs.len(), 1);
        assert_eq!(
            homs[0].bindings.get(&Variable::new("z")),
            Some(&Value::int(1))
        );
    }

    #[test]
    fn empty_subset_entails_nothing() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &FactSet::empty(db.len())));
    }

    #[test]
    fn limited_enumeration_stops_early() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert_eq!(eval.homomorphisms(&db, &db.all_facts(), Some(2)).len(), 2);
        assert_eq!(eval.homomorphisms(&db, &db.all_facts(), None).len(), 6);
    }

    #[test]
    fn answer_images_are_visited_per_homomorphism() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let mut images = Vec::new();
        let stopped = eval
            .for_each_answer_image(&db, &db.all_facts(), &[Value::str("u")], |image| {
                images.push(image.to_vec());
                false
            })
            .unwrap();
        assert!(!stopped);
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].len(), 2);
    }

    #[test]
    fn repeated_answer_variables_require_equal_candidate_values() {
        let db = graph_db();
        let q = ConjunctiveQuery::new(
            db.schema(),
            vec![Variable::new("x"), Variable::new("x")],
            vec![crate::Atom::new(
                db.schema().relation_id("E").unwrap(),
                vec![Term::var("x"), Term::var("y")],
            )],
        )
        .unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("u"), Value::str("v")])
            .unwrap());
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("u"), Value::str("u")])
            .unwrap());
    }
}
