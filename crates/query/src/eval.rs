//! Homomorphism-based evaluation of conjunctive queries.
//!
//! The evaluator compiles the query once at construction: variables are
//! interned into dense *slots*, every atom's terms are resolved to either
//! a constant or a slot index, and two [`JoinPlan`]s are built — one for
//! free enumeration and one with the answer slots treated as prebound
//! (the candidate-driven paths of the lineage compiler).  Evaluation
//! executes the plan on **dictionary-encoded symbols**: at each entry
//! point the query's constants are resolved through the database's
//! [`Dictionary`] (a constant the dictionary never
//! saw provably matches nothing, so the run short-circuits), atoms join
//! in selectivity order, each step an indexed lookup against the
//! database's [`RelationIndex`](ucqa_db::RelationIndex) (or a filtered
//! scan when nothing is bound), binding symbols by slot into a flat
//! `Vec<Option<Sym>>` — every comparison a `u32` compare, no
//! `Variable`/`Value` clones on the search path.  Named [`Bindings`] are
//! only decoded back to [`Value`]s when a full homomorphism is reported.
//!
//! The pre-plan behaviour — body order, whole-relation scans — survives as
//! the `*_unplanned` methods ([`QueryEvaluator::entails_unplanned`],
//! [`QueryEvaluator::for_each_answer_image_unplanned`], …): the measured
//! baseline of the `e17` bench and the cross-checking property tests.

use std::collections::{BTreeMap, BTreeSet};

use ucqa_db::{Database, Dictionary, FactId, FactSet, Sym, Value};

use crate::plan::{match_and_bind, unbind, JoinPlan, PlanAtom, PlanTerm, SymAtom, SymTerm};
use crate::{ConjunctiveQuery, QueryError, Term, Variable};

/// A variable assignment produced by a homomorphism from a query into a
/// database.
pub type Bindings = BTreeMap<Variable, Value>;

/// A single homomorphism `h` from a query `Q` into (a subset of) a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    /// The variable bindings of `h`.
    pub bindings: Bindings,
    /// The image `h(Q)`: the facts hit by the atoms of `Q`, as ids into the
    /// underlying database (deduplicated, sorted).
    pub image: Vec<FactId>,
}

impl Homomorphism {
    /// Applies the homomorphism to the answer variables, producing the
    /// answer tuple `h(x̄)`.
    pub fn answer_tuple(&self, query: &ConjunctiveQuery) -> Vec<Value> {
        query
            .answer_vars()
            .iter()
            .map(|v| {
                self.bindings
                    .get(v)
                    // Invariant, not user-reachable: safety of answer
                    // variables is checked at query construction.
                    .expect("answer variables are safe, so every homomorphism binds them")
                    .clone()
            })
            .collect()
    }
}

/// Evaluates conjunctive queries over sub-databases via a planned,
/// index-backed join.
///
/// The evaluator is constructed once per query and can then be applied to
/// many subsets `D' ⊆ D` (the typical usage pattern of the samplers:
/// evaluate the same query on thousands of sampled repairs).
#[derive(Debug, Clone)]
pub struct QueryEvaluator {
    query: ConjunctiveQuery,
    /// Slot index → variable, in first-occurrence order.
    slots: Vec<Variable>,
    /// Atoms with terms resolved to slots, in body order.
    atoms: Vec<PlanAtom>,
    /// Answer variable positions resolved to slots.
    answer_slots: Vec<usize>,
    /// Join plan for free enumeration (no slots prebound).
    plan: JoinPlan,
    /// Join plan with the answer slots treated as prebound (the
    /// candidate-driven paths: `has_answer`, the lineage compiler).
    answer_plan: JoinPlan,
}

impl QueryEvaluator {
    /// Creates an evaluator for `query`, interning its variables into
    /// dense slots and planning the join order.
    ///
    /// # Panics
    ///
    /// Panics if the query is outside the supported fragment (an atom
    /// with more than 64 terms); use [`QueryEvaluator::try_new`] for a
    /// typed error instead.
    pub fn new(query: ConjunctiveQuery) -> Self {
        match Self::try_new(query) {
            Ok(eval) => eval,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`QueryEvaluator::new`], returning
    /// [`QueryError::Unsupported`] instead of panicking when the query
    /// is outside the supported fragment.
    pub fn try_new(query: ConjunctiveQuery) -> Result<Self, QueryError> {
        Self::build(query, None)
    }

    /// As [`QueryEvaluator::try_new`], but plans with the full cost model
    /// over `db`'s live relation-index statistics
    /// ([`JoinPlan::build_costed`]): each step is chosen to minimise the
    /// estimated output cardinality, instead of bound coverage with
    /// body-order ties.
    ///
    /// Statistics describe `db` specifically, so use the resulting
    /// evaluator against that database (family).  The default constructor
    /// stays purely structural — its stable tie-break is the
    /// coverage-greedy baseline, and what the bank trie's prefix sharing
    /// relies on.  Witness sets, fallback flags, and same-seed estimates
    /// are identical either way; only enumeration speed differs.
    pub fn with_stats(query: ConjunctiveQuery, db: &Database) -> Result<Self, QueryError> {
        Self::build(query, Some(db))
    }

    fn build(query: ConjunctiveQuery, stats_db: Option<&Database>) -> Result<Self, QueryError> {
        let mut slots: Vec<Variable> = Vec::new();
        let slot_of = |slots: &mut Vec<Variable>, var: &Variable| -> usize {
            match slots.iter().position(|v| v == var) {
                Some(i) => i,
                None => {
                    slots.push(var.clone());
                    slots.len() - 1
                }
            }
        };
        let mut atoms: Vec<PlanAtom> = Vec::with_capacity(query.atoms().len());
        for atom in query.atoms() {
            // The search's backtrack bookkeeping records the term
            // positions bound per frame in a u64 bitmask.
            if atom.terms().len() > 64 {
                return Err(QueryError::Unsupported {
                    message: "atoms with more than 64 terms are not supported".into(),
                });
            }
            atoms.push(PlanAtom {
                relation: atom.relation(),
                terms: atom
                    .terms()
                    .iter()
                    .map(|term| match term {
                        Term::Const(c) => PlanTerm::Const(c.clone()),
                        Term::Var(v) => PlanTerm::Var(slot_of(&mut slots, v)),
                    })
                    .collect(),
            });
        }
        let answer_slots: Vec<usize> = query
            .answer_vars()
            .iter()
            .map(|v| {
                slots
                    .iter()
                    .position(|s| s == v)
                    // Invariant, not user-reachable: `ConjunctiveQuery::new`
                    // rejects unsafe answer variables at construction.
                    .expect("answer variables are safe, so they occur in the body")
            })
            .collect();
        let (plan, answer_plan) = match stats_db {
            Some(db) => {
                let index = db.relation_index();
                let dict = db.dictionary();
                (
                    JoinPlan::build_costed(&atoms, slots.len(), &[], index, dict),
                    JoinPlan::build_costed(&atoms, slots.len(), &answer_slots, index, dict),
                )
            }
            None => (
                JoinPlan::build(&atoms, slots.len(), &[]),
                JoinPlan::build(&atoms, slots.len(), &answer_slots),
            ),
        };
        Ok(QueryEvaluator {
            query,
            slots,
            atoms,
            answer_slots,
            plan,
            answer_plan,
        })
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The join plan of free enumeration (nothing prebound).
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// The join plan of candidate-driven enumeration (answer slots treated
    /// as prebound) — the order the lineage compiler and the bank's shared
    /// scan trie enumerate witnesses in.
    pub fn answer_plan(&self) -> &JoinPlan {
        &self.answer_plan
    }

    /// Dictionary-encodes the query body against `db`.  `None` means some
    /// query constant was never interned, so no atom — and hence the whole
    /// query — matches anything in `db`.
    fn encode_atoms(&self, db: &Database) -> Option<Vec<SymAtom>> {
        SymAtom::encode_all(&self.atoms, db.dictionary())
    }

    /// Enumerates all homomorphisms from the query into the sub-database
    /// `subset ⊆ db`.
    ///
    /// If `max` is `Some(n)`, enumeration stops after `n` homomorphisms.
    pub fn homomorphisms(
        &self,
        db: &Database,
        subset: &FactSet,
        max: Option<usize>,
    ) -> Vec<Homomorphism> {
        let mut results = Vec::new();
        let Some(encoded) = self.encode_atoms(db) else {
            return results;
        };
        let dict = db.dictionary();
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |bindings, image| {
                results.push(self.materialize(dict, bindings, image));
                max.is_some_and(|limit| results.len() >= limit)
            },
        );
        results
    }

    /// Returns `true` iff at least one homomorphism exists, i.e. `D' ⊨ Q`
    /// for Boolean queries (and "Q has some answer" otherwise).
    pub fn entails(&self, db: &Database, subset: &FactSet) -> bool {
        let Some(encoded) = self.encode_atoms(db) else {
            return false;
        };
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |_, _| true,
        )
    }

    /// The set of answers `Q(D')`.
    pub fn answers(&self, db: &Database, subset: &FactSet) -> BTreeSet<Vec<Value>> {
        let mut answers = BTreeSet::new();
        let Some(encoded) = self.encode_atoms(db) else {
            return answers;
        };
        let dict = db.dictionary();
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |bindings, _| {
                answers.insert(
                    self.answer_slots
                        .iter()
                        .map(|&slot| {
                            let sym = bindings[slot]
                                // Invariant, not user-reachable: the plan
                                // binds every slot before reaching a leaf.
                                .expect("answer slots are bound at every leaf");
                            dict.decode(sym).clone()
                        })
                        .collect(),
                );
                false
            },
        );
        answers
    }

    /// Returns `true` iff the tuple `candidate` is an answer to the query
    /// over `D'`, i.e. `candidate ∈ Q(D')`.
    pub fn has_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<bool, QueryError> {
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(false);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(false);
        };
        let mut image = Vec::new();
        Ok(self.answer_plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |_, _| true,
        ))
    }

    /// Enumerates the homomorphisms `h` with `h(x̄) = candidate`, without a
    /// limit.  Used by the lower-bound machinery and the lineage compiler,
    /// which need the image facts `h(Q)`.
    pub fn homomorphisms_for_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<Vec<Homomorphism>, QueryError> {
        let mut results = Vec::new();
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(results);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(results);
        };
        let dict = db.dictionary();
        let mut image = Vec::new();
        self.answer_plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |bindings, image| {
                results.push(self.materialize(dict, bindings, image));
                false
            },
        );
        Ok(results)
    }

    /// Visits the image `h(Q)` of every homomorphism `h` with
    /// `h(x̄) = candidate`, without materialising bindings.  The visitor
    /// returns `true` to stop enumeration early; the overall return value
    /// is `true` iff enumeration was stopped.
    ///
    /// This is the enumeration backend of the lineage compiler: images
    /// arrive unsorted and may contain duplicate fact ids (facts hit by
    /// several atoms).
    pub fn for_each_answer_image<F>(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
        mut visitor: F,
    ) -> Result<bool, QueryError>
    where
        F: FnMut(&[FactId]) -> bool,
    {
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(false);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(false);
        };
        let mut image = Vec::new();
        Ok(self.answer_plan.run(
            db,
            db.relation_index(),
            subset,
            &encoded,
            &mut bindings,
            &mut image,
            &mut |_, image| visitor(image),
        ))
    }

    /// As [`QueryEvaluator::for_each_answer_image`], restricted to images
    /// that touch at least one fact of `inserted_by_relation` (one
    /// ascending fact-id list per relation id) — the delta enumeration
    /// backend of [`crate::CompiledLineage::refresh`] and
    /// [`crate::LineageBank::refresh`].
    ///
    /// Runs one pinned pass of the answer plan per plan step (step `p`
    /// draws its candidates from the inserted facts of its relation, all
    /// other steps keep their indexed access paths, and the pinned atom is
    /// still fully re-validated); images touching several inserted facts
    /// are visited once per touched step, so callers must deduplicate.
    /// Candidate prebinding and atom encoding run against the *current*
    /// dictionary, so a candidate or constant first interned by the
    /// inserted facts grounds here even though it could not at compile
    /// time.
    pub fn for_each_delta_answer_image<F>(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
        inserted_by_relation: &[Vec<FactId>],
        mut visitor: F,
    ) -> Result<bool, QueryError>
    where
        F: FnMut(&[FactId]) -> bool,
    {
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(false);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(false);
        };
        let mut image = Vec::new();
        Ok(self.answer_plan.run_delta(
            db,
            db.relation_index(),
            subset,
            &encoded,
            inserted_by_relation,
            &mut bindings,
            &mut image,
            &mut |_, image| visitor(image),
        ))
    }

    /// As [`QueryEvaluator::homomorphisms`], on the unplanned baseline
    /// (body-order backtracking, whole-relation scans).
    pub fn homomorphisms_unplanned(
        &self,
        db: &Database,
        subset: &FactSet,
        max: Option<usize>,
    ) -> Vec<Homomorphism> {
        let mut results = Vec::new();
        let Some(encoded) = self.encode_atoms(db) else {
            return results;
        };
        let dict = db.dictionary();
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.search(
            db,
            &encoded,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |bindings, image| {
                results.push(self.materialize(dict, bindings, image));
                max.is_some_and(|limit| results.len() >= limit)
            },
        );
        results
    }

    /// As [`QueryEvaluator::entails`], on the unplanned baseline.
    pub fn entails_unplanned(&self, db: &Database, subset: &FactSet) -> bool {
        let Some(encoded) = self.encode_atoms(db) else {
            return false;
        };
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        let mut image = Vec::new();
        self.search(
            db,
            &encoded,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |_, _| true,
        )
    }

    /// As [`QueryEvaluator::has_answer`], on the unplanned baseline.
    pub fn has_answer_unplanned(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<bool, QueryError> {
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(false);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(false);
        };
        let mut image = Vec::new();
        Ok(self.search(
            db,
            &encoded,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |_, _| true,
        ))
    }

    /// As [`QueryEvaluator::for_each_answer_image`], on the unplanned
    /// baseline — the pre-plan witness enumeration measured by the `e17`
    /// bench and cross-checked by the property tests.
    pub fn for_each_answer_image_unplanned<F>(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
        mut visitor: F,
    ) -> Result<bool, QueryError>
    where
        F: FnMut(&[FactId]) -> bool,
    {
        let mut bindings: Vec<Option<Sym>> = vec![None; self.slots.len()];
        if !self.prebind_candidate(db.dictionary(), candidate, &mut bindings)? {
            return Ok(false);
        }
        let Some(encoded) = self.encode_atoms(db) else {
            return Ok(false);
        };
        let mut image = Vec::new();
        Ok(self.search(
            db,
            &encoded,
            subset,
            0,
            &mut bindings,
            &mut image,
            &mut |_, image| visitor(image),
        ))
    }

    /// The grounded, plan-ordered, dictionary-encoded atoms of a
    /// candidate-driven enumeration: the atoms in
    /// [`QueryEvaluator::answer_plan`] order, with answer slots
    /// substituted by the candidate constants (as symbols) and the
    /// remaining variables renumbered by first occurrence along that
    /// order.
    ///
    /// Two bank entries with equal grounded atom prefixes enumerate the
    /// same partial joins, which is what the shared scan trie of
    /// [`crate::LineageBank::compile`] factors out — and symbol-encoded
    /// atoms make that prefix comparison a `u32` compare.  Returns
    /// `Ok(None)` when the candidate provably has no homomorphisms at
    /// all: a repeated answer variable receives two different candidate
    /// values, or a candidate/query constant was never interned by
    /// `dict` (it then occurs in no fact).
    pub(crate) fn grounded_answer_atoms(
        &self,
        dict: &Dictionary,
        candidate: &[Value],
    ) -> Result<Option<Vec<SymAtom>>, QueryError> {
        if candidate.len() != self.answer_slots.len() {
            return Err(QueryError::AnswerArityMismatch {
                expected: self.answer_slots.len(),
                actual: candidate.len(),
            });
        }
        let mut slot_value: Vec<Option<&Value>> = vec![None; self.slots.len()];
        for (&slot, value) in self.answer_slots.iter().zip(candidate) {
            match slot_value[slot] {
                Some(existing) if existing != value => return Ok(None),
                _ => slot_value[slot] = Some(value),
            }
        }
        let mut renumbered: Vec<Option<usize>> = vec![None; self.slots.len()];
        let mut next = 0usize;
        let mut grounded = Vec::with_capacity(self.atoms.len());
        for atom in self.answer_plan.atom_order() {
            let mut terms = Vec::with_capacity(self.atoms[atom].terms.len());
            for term in &self.atoms[atom].terms {
                let encoded = match term {
                    PlanTerm::Const(c) => match dict.lookup(c) {
                        Some(sym) => SymTerm::Const(sym),
                        None => return Ok(None),
                    },
                    PlanTerm::Var(slot) => match slot_value[*slot] {
                        Some(value) => match dict.lookup(value) {
                            Some(sym) => SymTerm::Const(sym),
                            None => return Ok(None),
                        },
                        None => {
                            let id = *renumbered[*slot].get_or_insert_with(|| {
                                let id = next;
                                next += 1;
                                id
                            });
                            SymTerm::Var(id)
                        }
                    },
                };
                terms.push(encoded);
            }
            grounded.push(SymAtom {
                relation: self.atoms[atom].relation,
                terms,
            });
        }
        Ok(Some(grounded))
    }

    /// Binds the answer slots to the candidate values (encoded through
    /// `dict`), returning `Ok(false)` if a repeated answer variable
    /// receives two different values or a candidate value was never
    /// interned (it then matches nothing).
    fn prebind_candidate(
        &self,
        dict: &Dictionary,
        candidate: &[Value],
        bindings: &mut [Option<Sym>],
    ) -> Result<bool, QueryError> {
        if candidate.len() != self.answer_slots.len() {
            return Err(QueryError::AnswerArityMismatch {
                expected: self.answer_slots.len(),
                actual: candidate.len(),
            });
        }
        for (&slot, value) in self.answer_slots.iter().zip(candidate) {
            let Some(sym) = dict.lookup(value) else {
                return Ok(false);
            };
            match bindings[slot] {
                Some(existing) if existing != sym => return Ok(false),
                _ => bindings[slot] = Some(sym),
            }
        }
        Ok(true)
    }

    /// Builds a caller-facing [`Homomorphism`] from slot bindings and a raw
    /// image (leaf-time only — never on the backtracking path).  This is
    /// the decode boundary: symbols become [`Value`]s here.
    fn materialize(
        &self,
        dict: &Dictionary,
        bindings: &[Option<Sym>],
        image: &[FactId],
    ) -> Homomorphism {
        let named: Bindings = self
            .slots
            .iter()
            .zip(bindings)
            .filter_map(|(var, sym)| sym.map(|s| (var.clone(), dict.decode(s).clone())))
            .collect();
        let mut image = image.to_vec();
        image.sort();
        image.dedup();
        Homomorphism {
            bindings: named,
            image,
        }
    }

    /// The unplanned backtracking join (body order, whole-relation scans).
    /// `sink` is invoked at every leaf with the current slot bindings and
    /// the (unsorted, possibly duplicated) image; it returns `true` to
    /// stop the search.  The overall return value is `true` iff the search
    /// was stopped by the sink.
    #[allow(clippy::too_many_arguments)]
    fn search<F>(
        &self,
        db: &Database,
        encoded: &[SymAtom],
        subset: &FactSet,
        atom_index: usize,
        bindings: &mut Vec<Option<Sym>>,
        image: &mut Vec<FactId>,
        sink: &mut F,
    ) -> bool
    where
        F: FnMut(&[Option<Sym>], &[FactId]) -> bool,
    {
        if atom_index == encoded.len() {
            return sink(bindings, image);
        }
        let atom = &encoded[atom_index];
        let columns = db.columns_of(atom.relation);
        for &fact_id in db.facts_of(atom.relation) {
            if !subset.contains(fact_id) {
                continue;
            }
            // Unify the atom's terms with the fact's symbols; the same
            // match-and-bind kernel backs the planned executor and the
            // bank's scan trie, so the baselines cannot drift.
            let Some(bound_here) =
                match_and_bind(&atom.terms, columns, db.row_of(fact_id), bindings)
            else {
                continue;
            };
            image.push(fact_id);
            let stop = self.search(db, encoded, subset, atom_index + 1, bindings, image, sink);
            image.pop();
            unbind(&atom.terms, bound_here, bindings);
            if stop {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::Schema;

    /// A small graph encoded as a database, following the B.1 reduction
    /// layout: V(node, colour), E(src, dst), T(flag).
    fn graph_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("E", &["S", "T"]).unwrap();
        schema.add_relation("T", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        for node in ["u", "v", "w"] {
            db.insert_values("V", [Value::str(node), Value::int(0)])
                .unwrap();
            db.insert_values("V", [Value::str(node), Value::int(1)])
                .unwrap();
        }
        db.insert_values("E", [Value::str("u"), Value::str("v")])
            .unwrap();
        db.insert_values("E", [Value::str("v"), Value::str("w")])
            .unwrap();
        db.insert_values("T", [Value::int(1)]).unwrap();
        db
    }

    #[test]
    fn boolean_entailment() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V(x, z), V(y, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        // Full database contains V(u,1), V(v,1), E(u,v), T(1) → entailed.
        assert!(eval.entails(&db, &db.all_facts()));
        // Remove all colour-1 facts for u: V(u,1) is fact id 1.
        let mut subset = db.all_facts();
        subset.remove(FactId::new(1));
        subset.remove(FactId::new(3)); // V(v,1)
        assert!(!eval.entails(&db, &subset));
    }

    #[test]
    fn answers_and_has_answer() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x, y) :- E(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::str("u"), Value::str("v")]));
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("v"), Value::str("w")])
            .unwrap());
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("w"), Value::str("u")])
            .unwrap());
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("v")])
            .is_err());
    }

    #[test]
    fn unknown_constants_match_nothing_without_interning() {
        let db = graph_db();
        // "zzz" was never inserted: the planned and unplanned paths, the
        // candidate paths, and answers all agree on "no match", and the
        // probe must not grow the dictionary.
        let q = parse_query(db.schema(), "Ans() :- V('zzz', x)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &db.all_facts()));
        assert!(!eval.entails_unplanned(&db, &db.all_facts()));
        assert!(eval.homomorphisms(&db, &db.all_facts(), None).is_empty());
        let q = parse_query(db.schema(), "Ans(x) :- E(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("zzz")])
            .unwrap());
        assert!(db.dictionary().lookup(&Value::str("zzz")).is_none());
        // Arity errors still take precedence over unknown constants.
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("zzz"), Value::str("q")])
            .is_err());
    }

    #[test]
    fn homomorphism_images_contain_hit_facts() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V(x, 1), T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval.homomorphisms(&db, &db.all_facts(), None);
        // One homomorphism per node (x ∈ {u, v, w}).
        assert_eq!(homs.len(), 3);
        for h in &homs {
            assert_eq!(h.image.len(), 2); // a V fact plus the T fact
        }
    }

    #[test]
    fn constants_in_atoms_filter_matches() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, 0)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert_eq!(eval.answers(&db, &db.all_facts()).len(), 3);
        let q = parse_query(db.schema(), "Ans(x) :- V('u', x)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::int(0)]));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let db = graph_db();
        // E(x, x) has no match in this graph (no self loops).
        let q = parse_query(db.schema(), "Ans() :- E(x, x)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &db.all_facts()));
    }

    #[test]
    fn homomorphisms_for_answer_prebinds_answer_vars() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval
            .homomorphisms_for_answer(&db, &db.all_facts(), &[Value::str("u")])
            .unwrap();
        assert_eq!(homs.len(), 1);
        assert_eq!(
            homs[0].bindings.get(&Variable::new("z")),
            Some(&Value::int(1))
        );
    }

    #[test]
    fn empty_subset_entails_nothing() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &FactSet::empty(db.len())));
    }

    #[test]
    fn limited_enumeration_stops_early() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert_eq!(eval.homomorphisms(&db, &db.all_facts(), Some(2)).len(), 2);
        assert_eq!(eval.homomorphisms(&db, &db.all_facts(), None).len(), 6);
    }

    #[test]
    fn answer_images_are_visited_per_homomorphism() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let mut images = Vec::new();
        let stopped = eval
            .for_each_answer_image(&db, &db.all_facts(), &[Value::str("u")], |image| {
                images.push(image.to_vec());
                false
            })
            .unwrap();
        assert!(!stopped);
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].len(), 2);
    }

    #[test]
    fn repeated_answer_variables_require_equal_candidate_values() {
        let db = graph_db();
        let q = ConjunctiveQuery::new(
            db.schema(),
            vec![Variable::new("x"), Variable::new("x")],
            vec![crate::Atom::new(
                db.schema().relation_id("E").unwrap(),
                vec![Term::var("x"), Term::var("y")],
            )],
        )
        .unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("u"), Value::str("v")])
            .unwrap());
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("u"), Value::str("u")])
            .unwrap());
        // Grounding mirrors the prebind rules: a conflicting candidate has
        // no grounded atoms at all.
        let dict = db.dictionary();
        assert!(eval
            .grounded_answer_atoms(dict, &[Value::str("u"), Value::str("v")])
            .unwrap()
            .is_none());
        assert!(eval
            .grounded_answer_atoms(dict, &[Value::str("u"), Value::str("u")])
            .unwrap()
            .is_some());
        assert!(eval
            .grounded_answer_atoms(dict, &[Value::str("u")])
            .is_err());
        // A never-interned candidate also grounds to nothing.
        assert!(eval
            .grounded_answer_atoms(dict, &[Value::str("zz"), Value::str("zz")])
            .unwrap()
            .is_none());
    }

    #[test]
    fn planned_evaluation_agrees_with_the_unplanned_baseline() {
        let db = graph_db();
        let texts = [
            "Ans() :- E(x, y), V(x, z), V(y, z), T(z)",
            "Ans(x) :- V(x, z), T(z)",
            "Ans(x, y) :- E(x, y), V(y, 1)",
            "Ans() :- V(x, 9)",
        ];
        for text in texts {
            let eval = QueryEvaluator::new(parse_query(db.schema(), text).unwrap());
            for mask in 0u32..(1 << db.len().min(11)) {
                let subset = FactSet::from_iter(
                    db.len(),
                    (0..db.len())
                        .filter(|i| (mask >> i) & 1 == 1)
                        .map(FactId::new),
                );
                assert_eq!(
                    eval.entails(&db, &subset),
                    eval.entails_unplanned(&db, &subset),
                    "{text}, mask {mask:b}"
                );
                let mut planned: Vec<Homomorphism> = eval.homomorphisms(&db, &subset, None);
                let mut unplanned = eval.homomorphisms_unplanned(&db, &subset, None);
                planned.sort_by(|a, b| a.bindings.cmp(&b.bindings));
                unplanned.sort_by(|a, b| a.bindings.cmp(&b.bindings));
                assert_eq!(planned, unplanned, "{text}, mask {mask:b}");
            }
        }
    }

    #[test]
    fn oversized_atoms_are_a_typed_error() {
        let mut schema = Schema::new();
        let attrs: Vec<String> = (0..65).map(|i| format!("A{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        schema.add_relation("W", &attr_refs).unwrap();
        let relation = schema.relation_id("W").unwrap();
        let terms: Vec<Term> = (0..65).map(|i| Term::var(format!("x{i}"))).collect();
        let query = ConjunctiveQuery::new(&schema, vec![], vec![crate::Atom::new(relation, terms)])
            .unwrap();
        let err = QueryEvaluator::try_new(query).unwrap_err();
        assert!(matches!(err, QueryError::Unsupported { .. }));
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn grounded_answer_atoms_substitute_candidates_and_renumber() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let dict = db.dictionary();
        let grounded = eval
            .grounded_answer_atoms(dict, &[Value::str("u")])
            .unwrap()
            .unwrap();
        assert_eq!(grounded.len(), 2);
        // The answer slot is substituted by the constant's symbol; z is
        // renumbered to slot 0 in first-occurrence order along the plan.
        let v = db.schema().relation_id("V").unwrap();
        let u_sym = dict.lookup(&Value::str("u")).unwrap();
        let first = grounded
            .iter()
            .find(|atom| atom.relation == v)
            .expect("the V atom survives grounding");
        assert_eq!(first.terms[0], SymTerm::Const(u_sym));
        assert_eq!(first.terms[1], SymTerm::Var(0));
        // Identical queries with identical candidates ground identically
        // (the trie-sharing invariant).
        let q2 = parse_query(db.schema(), "Ans(a) :- V(a, b), T(b)").unwrap();
        let eval2 = QueryEvaluator::new(q2);
        assert_eq!(
            eval2
                .grounded_answer_atoms(dict, &[Value::str("u")])
                .unwrap(),
            Some(grounded)
        );
    }
}
