//! Homomorphism-based evaluation of conjunctive queries.

use std::collections::{BTreeMap, BTreeSet};

use ucqa_db::{Database, FactId, FactSet, Value};

use crate::{ConjunctiveQuery, QueryError, Term, Variable};

/// A variable assignment produced by a homomorphism from a query into a
/// database.
pub type Bindings = BTreeMap<Variable, Value>;

/// A single homomorphism `h` from a query `Q` into (a subset of) a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    /// The variable bindings of `h`.
    pub bindings: Bindings,
    /// The image `h(Q)`: the facts hit by the atoms of `Q`, as ids into the
    /// underlying database (deduplicated, sorted).
    pub image: Vec<FactId>,
}

impl Homomorphism {
    /// Applies the homomorphism to the answer variables, producing the
    /// answer tuple `h(x̄)`.
    pub fn answer_tuple(&self, query: &ConjunctiveQuery) -> Vec<Value> {
        query
            .answer_vars()
            .iter()
            .map(|v| {
                self.bindings
                    .get(v)
                    .expect("answer variables are safe, so every homomorphism binds them")
                    .clone()
            })
            .collect()
    }
}

/// Evaluates conjunctive queries over sub-databases via backtracking join.
///
/// The evaluator is constructed once per query and database and can then be
/// applied to many subsets `D' ⊆ D` (the typical usage pattern of the
/// samplers: evaluate the same query on thousands of sampled repairs).
#[derive(Debug, Clone)]
pub struct QueryEvaluator {
    query: ConjunctiveQuery,
}

impl QueryEvaluator {
    /// Creates an evaluator for `query`.
    pub fn new(query: ConjunctiveQuery) -> Self {
        QueryEvaluator { query }
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Enumerates all homomorphisms from the query into the sub-database
    /// `subset ⊆ db`.
    ///
    /// If `max` is `Some(n)`, enumeration stops after `n` homomorphisms.
    pub fn homomorphisms(
        &self,
        db: &Database,
        subset: &FactSet,
        max: Option<usize>,
    ) -> Vec<Homomorphism> {
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        let mut image = Vec::new();
        self.search(db, subset, 0, &mut bindings, &mut image, &mut results, max);
        results
    }

    /// Returns `true` iff at least one homomorphism exists, i.e. `D' ⊨ Q`
    /// for Boolean queries (and "Q has some answer" otherwise).
    pub fn entails(&self, db: &Database, subset: &FactSet) -> bool {
        !self.homomorphisms(db, subset, Some(1)).is_empty()
    }

    /// The set of answers `Q(D')`.
    pub fn answers(&self, db: &Database, subset: &FactSet) -> BTreeSet<Vec<Value>> {
        self.homomorphisms(db, subset, None)
            .iter()
            .map(|h| h.answer_tuple(&self.query))
            .collect()
    }

    /// Returns `true` iff the tuple `candidate` is an answer to the query
    /// over `D'`, i.e. `candidate ∈ Q(D')`.
    pub fn has_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<bool, QueryError> {
        if candidate.len() != self.query.answer_vars().len() {
            return Err(QueryError::AnswerArityMismatch {
                expected: self.query.answer_vars().len(),
                actual: candidate.len(),
            });
        }
        // Pre-bind the answer variables to the candidate values and search.
        let mut bindings = Bindings::new();
        for (var, value) in self.query.answer_vars().iter().zip(candidate) {
            if let Some(existing) = bindings.get(var) {
                if existing != value {
                    return Ok(false);
                }
            }
            bindings.insert(var.clone(), value.clone());
        }
        let mut results = Vec::new();
        let mut image = Vec::new();
        self.search(db, subset, 0, &mut bindings, &mut image, &mut results, Some(1));
        Ok(!results.is_empty())
    }

    /// Enumerates the homomorphisms `h` with `h(x̄) = candidate`, without a
    /// limit.  Used by the lower-bound machinery, which needs the image
    /// facts `h(Q)`.
    pub fn homomorphisms_for_answer(
        &self,
        db: &Database,
        subset: &FactSet,
        candidate: &[Value],
    ) -> Result<Vec<Homomorphism>, QueryError> {
        if candidate.len() != self.query.answer_vars().len() {
            return Err(QueryError::AnswerArityMismatch {
                expected: self.query.answer_vars().len(),
                actual: candidate.len(),
            });
        }
        let mut bindings = Bindings::new();
        for (var, value) in self.query.answer_vars().iter().zip(candidate) {
            bindings.insert(var.clone(), value.clone());
        }
        let mut results = Vec::new();
        let mut image = Vec::new();
        self.search(db, subset, 0, &mut bindings, &mut image, &mut results, None);
        Ok(results)
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        db: &Database,
        subset: &FactSet,
        atom_index: usize,
        bindings: &mut Bindings,
        image: &mut Vec<FactId>,
        results: &mut Vec<Homomorphism>,
        max: Option<usize>,
    ) {
        if let Some(limit) = max {
            if results.len() >= limit {
                return;
            }
        }
        if atom_index == self.query.atoms().len() {
            let mut image = image.clone();
            image.sort();
            image.dedup();
            results.push(Homomorphism {
                bindings: bindings.clone(),
                image,
            });
            return;
        }
        let atom = &self.query.atoms()[atom_index];
        for &fact_id in db.facts_of(atom.relation()) {
            if !subset.contains(fact_id) {
                continue;
            }
            let fact = db.fact(fact_id);
            // Try to unify the atom's terms with the fact's values.
            let mut newly_bound: Vec<Variable> = Vec::new();
            let mut ok = true;
            for (term, value) in atom.terms().iter().zip(fact.values()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings.insert(v.clone(), value.clone());
                            newly_bound.push(v.clone());
                        }
                    },
                }
            }
            if ok {
                image.push(fact_id);
                self.search(db, subset, atom_index + 1, bindings, image, results, max);
                image.pop();
            }
            for v in newly_bound {
                bindings.remove(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ucqa_db::Schema;

    /// A small graph encoded as a database, following the B.1 reduction
    /// layout: V(node, colour), E(src, dst), T(flag).
    fn graph_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("V", &["N", "C"]).unwrap();
        schema.add_relation("E", &["S", "T"]).unwrap();
        schema.add_relation("T", &["X"]).unwrap();
        let mut db = Database::with_schema(schema);
        for node in ["u", "v", "w"] {
            db.insert_values("V", [Value::str(node), Value::int(0)]).unwrap();
            db.insert_values("V", [Value::str(node), Value::int(1)]).unwrap();
        }
        db.insert_values("E", [Value::str("u"), Value::str("v")]).unwrap();
        db.insert_values("E", [Value::str("v"), Value::str("w")]).unwrap();
        db.insert_values("T", [Value::int(1)]).unwrap();
        db
    }

    #[test]
    fn boolean_entailment() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- E(x, y), V(x, z), V(y, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        // Full database contains V(u,1), V(v,1), E(u,v), T(1) → entailed.
        assert!(eval.entails(&db, &db.all_facts()));
        // Remove all colour-1 facts for u: V(u,1) is fact id 1.
        let mut subset = db.all_facts();
        subset.remove(FactId::new(1));
        subset.remove(FactId::new(3)); // V(v,1)
        assert!(!eval.entails(&db, &subset));
    }

    #[test]
    fn answers_and_has_answer() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x, y) :- E(x, y)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::str("u"), Value::str("v")]));
        assert!(eval
            .has_answer(&db, &db.all_facts(), &[Value::str("v"), Value::str("w")])
            .unwrap());
        assert!(!eval
            .has_answer(&db, &db.all_facts(), &[Value::str("w"), Value::str("u")])
            .unwrap());
        assert!(eval.has_answer(&db, &db.all_facts(), &[Value::str("v")]).is_err());
    }

    #[test]
    fn homomorphism_images_contain_hit_facts() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- V(x, 1), T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval.homomorphisms(&db, &db.all_facts(), None);
        // One homomorphism per node (x ∈ {u, v, w}).
        assert_eq!(homs.len(), 3);
        for h in &homs {
            assert_eq!(h.image.len(), 2); // a V fact plus the T fact
        }
    }

    #[test]
    fn constants_in_atoms_filter_matches() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, 0)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert_eq!(eval.answers(&db, &db.all_facts()).len(), 3);
        let q = parse_query(db.schema(), "Ans(x) :- V('u', x)").unwrap();
        let eval = QueryEvaluator::new(q);
        let answers = eval.answers(&db, &db.all_facts());
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::int(0)]));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let db = graph_db();
        // E(x, x) has no match in this graph (no self loops).
        let q = parse_query(db.schema(), "Ans() :- E(x, x)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &db.all_facts()));
    }

    #[test]
    fn homomorphisms_for_answer_prebinds_answer_vars() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans(x) :- V(x, z), T(z)").unwrap();
        let eval = QueryEvaluator::new(q);
        let homs = eval
            .homomorphisms_for_answer(&db, &db.all_facts(), &[Value::str("u")])
            .unwrap();
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].bindings.get(&Variable::new("z")), Some(&Value::int(1)));
    }

    #[test]
    fn empty_subset_entails_nothing() {
        let db = graph_db();
        let q = parse_query(db.schema(), "Ans() :- T(1)").unwrap();
        let eval = QueryEvaluator::new(q);
        assert!(!eval.entails(&db, &FactSet::empty(db.len())));
    }
}
