//! # `uocqa` — Uniform Operational Consistent Query Answering
//!
//! Facade crate re-exporting the whole workspace, which is a from-scratch
//! Rust implementation of *Uniform Operational Consistent Query Answering*
//! (Calautti, Livshits, Pieris, Schneider — PODS 2022).
//!
//! The crates composing the system:
//!
//! * [`numeric`] — arbitrary-precision naturals and exact rationals.
//! * [`db`] — relational databases, functional dependencies, violations,
//!   conflict graphs and key blocks.
//! * [`query`] — conjunctive queries and homomorphism-based evaluation.
//! * [`repair`] — operations, repairing sequences, repairing Markov chains
//!   and the uniform Markov-chain generators.
//! * [`core`] — exact and approximate (FPRAS) uniform operational CQA.
//! * [`graphs`] — the graph/DNF substrate and the paper's hardness
//!   reductions.
//! * [`workload`] — seeded synthetic workload generators.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use ucqa_core as core;
pub use ucqa_db as db;
pub use ucqa_graphs as graphs;
pub use ucqa_numeric as numeric;
pub use ucqa_query as query;
pub use ucqa_repair as repair;
pub use ucqa_workload as workload;

/// A convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use ucqa_core::prelude::*;
    pub use ucqa_db::prelude::*;
    pub use ucqa_query::prelude::*;
    pub use ucqa_repair::prelude::*;
}

/// Compiles the `README.md` code examples as doctests (`cargo test --doc`),
/// so the README's "Batched estimation" excerpt can never drift from the
/// real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
